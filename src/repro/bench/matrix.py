"""The workload × architecture compare matrix (PROBE ``compare.py`` style).

Every performance claim in this repo used to rest on the paper's three
uniform §5 workloads. This runner sweeps a grid instead:

    workload (skewed / bursty / deep / uniform / replayed)
  × cell (architecture, shards, placement, GSIs, write_batch, read_cache)

with **R seeded repetitions per cell**. Each repetition generates a
fresh trace (rep-derived seed), loads it through a fresh simulation,
runs the Table 3 queries plus a point-read probe drawn from the
workload's own read distribution, and meters everything. Per-cell
aggregation reports min and median with a bootstrap confidence interval
of the median — the Kalibera & Jones prescription of reporting an
uncertainty interval over independent repetitions rather than a bare
mean.

Two honesty checks ride along:

* repetition 0 of every cell is serialised to the JSONL trace format
  and replayed through an identically-seeded simulation; the replayed
  meter must equal the original **byte for byte** (``replay_ok``);
* cache-enabled cells report the read-probe hit rate, so the report
  itself shows skew paying for the cache (Zipfian ≫ uniform).

Everything is a pure function of ``seed`` (PL003): no wall clock, no
module-level RNG, identical report for identical inputs.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Iterable, Sequence

from repro.passlib.records import ObjectRef
from repro.sim import Simulation
from repro.workloads import (
    BlastWorkload,
    DeepLineageWorkload,
    DiurnalBurstWorkload,
    LinuxCompileWorkload,
    TraceReplayWorkload,
    Workload,
    ZipfianFleetWorkload,
    dump_trace,
    load_trace,
)

#: The Q4 window every matrix repetition asks for: file versions that
#: changed during the rebuild passes (version 1 is the initial build).
Q4_VERSION_RANGE = (2, 3)

#: Bootstrap resamples behind each confidence interval.
BOOTSTRAP_ROUNDS = 200
#: Two-sided confidence level for the median interval.
CONFIDENCE = 0.95


# ---------------------------------------------------------------------------
# Grid axes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """One workload axis entry: a generator, its scale, its probe target."""

    key: str
    workload: Workload
    scale: float = 1.0
    #: The program name Q2/Q3 start from.
    program: str = "blast"

    def rep_rng(self, seed: int, rep: int) -> random.Random:
        return random.Random(f"matrix:{self.key}:{seed}:{rep}")


@dataclass(frozen=True)
class MatrixCell:
    """One architecture/knob cell of the grid."""

    key: str
    architecture: str = "s3+simpledb"
    shards: int = 1
    placement: str = "sdb"
    ddb_indexes: str = ""
    write_batch: int = 1
    read_cache: str = "off"
    concurrency: int = 1
    planner: str = "off"

    def build_simulation(self, seed: int) -> Simulation:
        kwargs = {}
        if self.architecture != "s3":
            kwargs["write_batch"] = self.write_batch
        return Simulation(
            architecture=self.architecture,
            seed=seed,
            shards=self.shards,
            placement=self.placement,
            ddb_indexes=self.ddb_indexes,
            read_cache=self.read_cache,
            concurrency=self.concurrency,
            planner=self.planner,
            **kwargs,
        )


def default_workloads(scale: float = 1.0) -> list[WorkloadSpec]:
    """The standard workload axis: skewed, bursty, deep, and uniform."""
    return [
        WorkloadSpec(
            key="zipfian",
            workload=ZipfianFleetWorkload(
                n_tenants=6, keys_per_tenant=24, n_ops=150, s=1.3
            ),
            scale=scale,
            program="ingest",
        ),
        WorkloadSpec(
            key="diurnal",
            workload=DiurnalBurstWorkload(
                inner=ZipfianFleetWorkload(n_tenants=4, keys_per_tenant=16, n_ops=120)
            ),
            scale=scale,
            program="ingest",
        ),
        WorkloadSpec(
            key="deep-lineage",
            workload=DeepLineageWorkload(chain_length=10_000),
            # 10k-step chains are the scale-1.0 contract; the default
            # matrix samples the shape at a tractable depth.
            scale=0.012 * scale,
            program="step",
        ),
        WorkloadSpec(
            key="uniform-blast",
            # Sized so its object pool matches the Zipfian cells' — the
            # hit-rate comparison then isolates skew, not pool size.
            workload=BlastWorkload(n_runs=3, queries_per_run=16),
            scale=scale,
            program="blast",
        ),
        WorkloadSpec(
            key="time-range",
            # Incremental rebuilds put most files at version ≥ 2, so the
            # Q4 version window is dense — the row composite hash+range
            # indexes (and the cost planner's range conditions) exist
            # to make cheap.
            workload=LinuxCompileWorkload(
                n_sources=160,
                n_headers=48,
                rebuild_passes=2,
                rebuild_fraction=0.30,
            ),
            # Full size on purpose: the per-shard ``type = 'file'``
            # partition then spans multiple index pages, so first-fit
            # (whole partition) pays strictly more Query requests than
            # the cost planner's version-window slice.
            scale=scale,
            program="cc1",
        ),
    ]


def default_cells() -> list[MatrixCell]:
    """The standard cell axis: layouts × placements × knobs."""
    return [
        MatrixCell(key="sdb-1"),
        MatrixCell(key="sdb-4", shards=4),
        MatrixCell(key="ddb-gsi-4", shards=4, placement="ddb", ddb_indexes="name,input"),
        MatrixCell(key="mixed-4-cache", shards=4, placement="mixed", read_cache="on"),
        MatrixCell(key="sdb-4-cache", shards=4, read_cache="on"),
        MatrixCell(key="sqs-wb8", architecture="s3+simpledb+sqs", write_batch=8),
        MatrixCell(
            key="ddb-planner-ff-4",
            shards=4,
            placement="ddb",
            ddb_indexes="name/nonce+*,type/nonce,name,input",
            planner="first-fit",
        ),
        MatrixCell(
            key="ddb-planner-cost-4",
            shards=4,
            placement="ddb",
            ddb_indexes="name/nonce+*,type/nonce,name,input",
            planner="cost",
        ),
    ]


def quick_workloads(scale: float = 1.0) -> list[WorkloadSpec]:
    """The reduced 2×2 CI smoke axis: one Zipfian + one deep-lineage."""
    return [
        WorkloadSpec(
            key="zipfian",
            workload=ZipfianFleetWorkload(n_tenants=4, keys_per_tenant=12, n_ops=60),
            scale=scale,
            program="ingest",
        ),
        WorkloadSpec(
            key="deep-lineage",
            workload=DeepLineageWorkload(chain_length=10_000),
            scale=0.004 * scale,
            program="step",
        ),
    ]


def quick_cells() -> list[MatrixCell]:
    return [
        MatrixCell(key="sdb-1"),
        MatrixCell(key="sdb-4-cache", shards=4, read_cache="on"),
    ]


# ---------------------------------------------------------------------------
# Kalibera-style summary statistics
# ---------------------------------------------------------------------------

def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def summarize(values: Sequence[float], rng: random.Random) -> dict:
    """Min / median / bootstrap CI of the median over repetitions."""
    values = list(values)
    if not values:
        raise ValueError("cannot summarize zero repetitions")
    medians = []
    for _ in range(BOOTSTRAP_ROUNDS):
        resample = [values[rng.randrange(len(values))] for _ in values]
        medians.append(_median(resample))
    medians.sort()
    alpha = (1.0 - CONFIDENCE) / 2.0
    low = medians[int(alpha * (len(medians) - 1))]
    high = medians[int((1.0 - alpha) * (len(medians) - 1))]
    return {
        "min": min(values),
        "median": _median(values),
        "ci_low": low,
        "ci_high": high,
        "values": values,
    }


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------

def _latest_refs(events) -> list[ObjectRef]:
    latest: dict[str, int] = {}
    for event in events:
        subject = event.subject
        if subject.version > latest.get(subject.name, 0):
            latest[subject.name] = subject.version
    return [ObjectRef(name=name, version=version) for name, version in latest.items()]


def _run_rep(
    spec: WorkloadSpec,
    cell: MatrixCell,
    seed: int,
    rep: int,
    probe_reads: int,
    check_replay: bool,
) -> dict:
    rng = spec.rep_rng(seed, rep)
    timed = list(spec.workload.iter_timed_events(rng, spec.scale))
    events = [event for _, event in timed]
    delays = [delay for delay, _ in timed] if spec.workload.timed else None

    sim = cell.build_simulation(seed=seed * 1000 + rep)
    clock_start = sim.account.clock.now
    if spec.workload.timed:
        sim.store_timed_events(timed)
    else:
        sim.store_events(events)
    loaded = sim.usage()
    metrics: dict = {
        "events": len(events),
        "load_ops": loaded.request_count(),
        "load_bytes_in": loaded.transfer_in(),
        "load_usd": sim.account.prices.cost(loaded).total,
        "load_seconds": sim.account.clock.now - clock_start,
    }

    engine = sim.query_engine()
    q2 = engine.q2_outputs_of(spec.program)
    q3 = engine.q3_descendants_of(spec.program)
    after_closure = sim.usage()
    metrics.update(
        {
            "q2_ops": q2.operations,
            "q2_latency": q2.latency,
            "q2_results": q2.result_count,
            "q3_ops": q3.operations,
            "q3_latency": q3.latency,
            "q3_results": q3.result_count,
            "query_usd": sim.account.prices.cost(after_closure - loaded).total,
        }
    )

    probe_rng = random.Random(f"matrix-probe:{spec.key}:{cell.key}:{seed}:{rep}")
    targets = spec.workload.sample_read_refs(probe_rng, _latest_refs(events), probe_reads)
    cache = sim.account.read_cache
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    probe_ops = 0
    probe_latency = 0.0
    for ref in targets:
        measurement = engine.q1(ref)
        probe_ops += measurement.operations
        probe_latency += measurement.latency
    metrics["probe_reads"] = len(targets)
    metrics["probe_ops"] = probe_ops
    metrics["probe_latency"] = probe_latency
    if cache is not None:
        hits = cache.hits - hits_before
        misses = cache.misses - misses_before
        if hits + misses:
            metrics["probe_hit_rate"] = hits / (hits + misses)

    if hasattr(engine, "q4_time_range"):
        before_q4 = sim.usage()
        q4 = engine.q4_time_range(*Q4_VERSION_RANGE)
        metrics.update(
            {
                "q4_ops": q4.operations,
                "q4_latency": q4.latency,
                "q4_results": q4.result_count,
                "q4_read_units": q4.usage.read_units(),
                "q4_usd": sim.account.prices.cost(sim.usage() - before_q4).total,
            }
        )
        predicted = [
            m.predicted_cost
            for m in (q2, q3, q4)
            if m.predicted_cost is not None
        ]
        if predicted:
            # Honesty pair: the planner's own estimate next to what the
            # meter actually charged for the same (planned) phases.
            metrics["query_predicted_usd"] = sum(predicted)
            metrics["query_metered_usd"] = metrics["query_usd"] + metrics["q4_usd"]

    if check_replay:
        text = dump_trace(events, workload=spec.workload.name, delays=delays)
        replay = TraceReplayWorkload(load_trace(text))
        resim = cell.build_simulation(seed=seed * 1000 + rep)
        if replay.timed:
            resim.store_timed_events(replay.iter_timed_events(random.Random(0)))
        else:
            resim.store_events(replay.iter_events(random.Random(0)))
        metrics["replay_ok"] = resim.usage() == loaded
    return metrics


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------

@dataclass
class CellReport:
    """Aggregated repetitions of one (workload, cell) pair."""

    workload: str
    cell: str
    stats: dict = field(default_factory=dict)
    replay_ok: bool | None = None


@dataclass
class MatrixReport:
    """The consolidated grid: every cell's statistics plus provenance."""

    seed: int
    reps: int
    workloads: list[dict]
    cells: list[dict]
    grid: list[CellReport]

    def cell(self, workload: str, cell: str) -> CellReport:
        for entry in self.grid:
            if entry.workload == workload and entry.cell == cell:
                return entry
        raise KeyError(f"no matrix entry ({workload!r}, {cell!r})")

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "reps": self.reps,
            "confidence": CONFIDENCE,
            "workloads": self.workloads,
            "cells": self.cells,
            "grid": [
                {
                    "workload": entry.workload,
                    "cell": entry.cell,
                    "replay_ok": entry.replay_ok,
                    "metrics": entry.stats,
                }
                for entry in self.grid
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_markdown(self) -> str:
        """One row per (workload, cell): medians with the load-ops CI."""
        def fmt(stats: dict | None, digits: int = 0) -> str:
            if stats is None:
                return "—"
            return f"{stats['median']:.{digits}f}"

        lines = [
            f"# Workload × architecture matrix (R={self.reps}, seed={self.seed}, "
            f"{int(CONFIDENCE * 100)}% bootstrap CI on medians)",
            "",
            "| workload | cell | events | load ops (median [CI]) | load USD |"
            " q2 ops | q3 ops | q1 probe ops | q1 hit rate | replay |",
            "|---|---|---|---|---|---|---|---|---|---|",
        ]
        for entry in self.grid:
            load = entry.stats["load_ops"]
            hit = entry.stats.get("probe_hit_rate")
            replay = {True: "byte-identical", False: "DRIFTED", None: "—"}[
                entry.replay_ok
            ]
            lines.append(
                "| {workload} | {cell} | {events} | {load} | {usd} | {q2} | {q3} |"
                " {probe} | {hit} | {replay} |".format(
                    workload=entry.workload,
                    cell=entry.cell,
                    events=fmt(entry.stats["events"]),
                    load=f"{load['median']:.0f} [{load['ci_low']:.0f}, "
                    f"{load['ci_high']:.0f}]",
                    usd=f"{entry.stats['load_usd']['median']:.4f}",
                    q2=fmt(entry.stats["q2_ops"]),
                    q3=fmt(entry.stats["q3_ops"]),
                    probe=fmt(entry.stats["probe_ops"]),
                    hit=f"{hit['median']:.0%}" if hit is not None else "—",
                    replay=replay,
                )
            )
        lines.append("")
        return "\n".join(lines)


def run_matrix(
    workloads: Iterable[WorkloadSpec] | None = None,
    cells: Iterable[MatrixCell] | None = None,
    reps: int = 3,
    seed: int = 0,
    probe_reads: int = 40,
    check_replay: bool = True,
) -> MatrixReport:
    """Sweep the grid; returns the consolidated report.

    Each repetition derives its own trace seed and simulation seed from
    ``seed``, so the whole report is reproducible from its header.
    ``check_replay`` serialises repetition 0 of every cell through the
    JSONL codec and requires the replayed meter to match byte for byte.
    """
    workload_list = list(workloads) if workloads is not None else default_workloads()
    cell_list = list(cells) if cells is not None else default_cells()
    if reps < 1:
        raise ValueError(f"need at least one repetition, got {reps}")

    grid: list[CellReport] = []
    for spec in workload_list:
        for cell in cell_list:
            rep_metrics = [
                _run_rep(
                    spec,
                    cell,
                    seed=seed,
                    rep=rep,
                    probe_reads=probe_reads,
                    check_replay=check_replay and rep == 0,
                )
                for rep in range(reps)
            ]
            boot_rng = random.Random(f"kalibera:{spec.key}:{cell.key}:{seed}")
            stats: dict = {}
            for metric in rep_metrics[0]:
                if metric == "replay_ok":
                    continue
                values = [m[metric] for m in rep_metrics if metric in m]
                if values:
                    stats[metric] = summarize(values, boot_rng)
            replay_flags = [m["replay_ok"] for m in rep_metrics if "replay_ok" in m]
            grid.append(
                CellReport(
                    workload=spec.key,
                    cell=cell.key,
                    stats=stats,
                    replay_ok=all(replay_flags) if replay_flags else None,
                )
            )
    return MatrixReport(
        seed=seed,
        reps=reps,
        workloads=[
            {
                "key": spec.key,
                "name": spec.workload.name,
                "scale": spec.scale,
                "program": spec.program,
            }
            for spec in workload_list
        ],
        cells=[asdict(cell) for cell in cell_list],
        grid=grid,
    )
