"""Statistical benchmark harnesses (the `repro matrix` machinery).

Distinct from the ``benchmarks/`` pytest tree: this package is library
code — importable, deterministic, seeded — that the CLI, the benchmark
suite, and the baseline gate all drive.
"""

from repro.bench.matrix import (
    MatrixCell,
    MatrixReport,
    WorkloadSpec,
    default_cells,
    default_workloads,
    run_matrix,
)

__all__ = [
    "MatrixCell",
    "MatrixReport",
    "WorkloadSpec",
    "default_cells",
    "default_workloads",
    "run_matrix",
]
