"""The commit daemon and cleaner daemon of architecture A3 (paper §4.3).

**Commit daemon** — periodically checks the WAL queue's approximate
length; once past a threshold it drains the queue, reassembles
transactions, and applies every *complete* one:

1. COPY the temporary data object to its real name, stamping the nonce
   (COPY, not rename, so a replay after a crash can re-run — §4.3);
2. PUT any spilled >1 KB values to their overflow objects;
3. PutAttributes the provenance items (≤100 attributes per call);
4. DeleteMessage all of the transaction's WAL records;
5. DELETE the temporary object.

Every step is idempotent, because the daemon may crash after applying
but before deleting the messages, in which case the records are received
and applied *again* after the visibility timeout — S3 and SimpleDB
semantics make the replay harmless (§4.3's idempotency argument, which
the property-based tests hammer).

Transactions with a commit record but missing pieces keep being polled
for (SQS sampling can hide messages); transactions with no commit record
are ignored — the client died mid-log — and SQS's 4-day retention reaps
their records.

**Cleaner daemon** — temporary objects staged by clients that crashed
before committing are invisible to the commit daemon; the cleaner lists
``.pass/tmp/`` and deletes anything older than the 4-day window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aws.account import AWSAccount
from repro.aws.faults import NO_FAULTS, FaultPlan
from repro.core.base import (
    DATA_BUCKET,
    TEMP_PREFIX,
    call_with_retries,
    data_key,
    put_provenance_item,
)
from repro.core.wal import AssembledTransaction, TransactionAssembler
from repro.errors import NoSuchKey, ReceiptHandleInvalid
from repro.migration.handle import RouterHandle, as_handle
from repro.sharding import ShardRouter
from repro.units import SECONDS_PER_DAY


@dataclass
class CommitDaemonStats:
    """Counters exposed for tests, benchmarks, and examples."""

    runs: int = 0
    transactions_applied: int = 0
    messages_received: int = 0
    duplicate_applies: int = 0
    incomplete_rounds: int = 0
    transactions_deferred: int = 0


class _DeferTransaction(Exception):
    """The transaction cannot apply yet (replica lag); retry next run.

    Raised when the temporary object a ``data`` record points at is not
    visible on any sampled replica — under eventual consistency the PUT
    may simply not have propagated. The transaction's messages stay on
    the queue (locked until the visibility timeout) and a later commit
    run retries; §4.3's 'eventually stored' argument in action.
    """


class CommitDaemon:
    """Drains the WAL queue and applies committed transactions."""

    def __init__(
        self,
        account: AWSAccount,
        queue_url: str,
        threshold: int = 10,
        receive_batch: int = 10,
        max_rounds: int = 50,
        empty_rounds_to_stop: int = 4,
        visibility_timeout: float = 120.0,
        faults: FaultPlan = NO_FAULTS,
        router: ShardRouter | RouterHandle | None = None,
    ):
        self.account = account
        self.queue_url = queue_url
        #: Routes each provenance item to its shard store — and, under a
        #: heterogeneous placement, to that shard's backend (SimpleDB or
        #: the DynamoDB-style table; both merge writes as sets, so the
        #: replay-idempotency argument above holds per backend). The
        #: daemon shares the store's :class:`RouterHandle`, so during a
        #: live migration its applies observe the same double-write
        #: window and per-shard cutovers as the client write path — a
        #: transaction logged before a migration and applied after it
        #: lands on the layout that is authoritative *at apply time*.
        #: The default single-shard router reproduces the paper's
        #: one-domain layout.
        self.routing = as_handle(router if router is not None else ShardRouter(1))
        self.threshold = threshold
        self.receive_batch = receive_batch
        self.max_rounds = max_rounds
        self.empty_rounds_to_stop = empty_rounds_to_stop
        self.visibility_timeout = visibility_timeout
        self.faults = faults
        self.stats = CommitDaemonStats()
        #: Transactions applied (kept to count duplicate replays).
        self._applied_txns: set[str] = set()

    # -- the monitor loop entry points --------------------------------------

    def run_once(self, force: bool = False) -> int:
        """One monitor tick: commit if the queue looks full enough.

        Returns the number of transactions applied. ``force`` skips the
        threshold check (used at shutdown and in tests).
        """
        approx = self.account.sqs.approximate_number_of_messages(self.queue_url)
        if not force and approx < self.threshold:
            return 0
        return self.commit_phase()

    def drain(self) -> int:
        """Commit until the queue is (apparently) empty. Returns applies."""
        total = 0
        for _ in range(self.max_rounds):
            applied = self.commit_phase()
            total += applied
            if applied == 0:
                break
        return total

    # -- the commit phase (§4.3 step 2) ------------------------------------------

    def commit_phase(self) -> int:
        """Receive, assemble, apply complete transactions."""
        self.stats.runs += 1
        assembler = TransactionAssembler()
        empty_rounds = 0
        rounds = 0
        # 2(a): receive as many messages as possible; keep going while
        # committed transactions are missing pieces (sampling can hide
        # messages from any single receive).
        while rounds < self.max_rounds:
            rounds += 1
            batch = self.account.sqs.receive_message(
                self.queue_url,
                max_messages=self.receive_batch,
                visibility_timeout=self.visibility_timeout,
            )
            self.stats.messages_received += len(batch)
            for message in batch:
                assembler.add(message)
            if batch:
                empty_rounds = 0
                continue
            empty_rounds += 1
            if assembler.pending_commits():
                self.stats.incomplete_rounds += 1
                if empty_rounds >= self.empty_rounds_to_stop * 2:
                    break  # pieces are locked elsewhere; retry next run
                continue
            if empty_rounds >= self.empty_rounds_to_stop:
                break

        # Apply strictly in transaction order. A WAL must replay in
        # order: the paper's "the order in which we process the records
        # does not matter" holds across *different* objects, but two
        # committed versions of the same object must land oldest-first
        # or a deferred old transaction could later overwrite new data.
        # Because each client logs transactions sequentially, an
        # earlier-id transaction that is present but not yet applicable
        # blocks everything after it — unless it was logged by a *dead*
        # incarnation (older epoch, no commit record): that transaction
        # can never complete and retention will reap it.
        applied = 0
        blocking_id: str | None = None
        present = assembler.all_transactions()
        for index, txn in enumerate(present):
            if txn.is_complete:
                continue
            if not txn.committed and index < len(present) - 1:
                # The client logs transactions one at a time, so an
                # uncommitted transaction with a successor on the queue
                # was abandoned mid-log: it can never complete. Skip it
                # (retention reaps its records).
                continue
            blocking_id = txn.txn_id
            break
        for txn in assembler.complete():
            if blocking_id is not None and txn.txn_id > blocking_id:
                self.stats.transactions_deferred += 1
                continue
            try:
                self._apply(txn)
            except _DeferTransaction:
                self.stats.transactions_deferred += 1
                break  # strict order: nothing after may jump the queue
            applied += 1
            assembler.forget(txn.txn_id)
        # Hand every message we could not act on straight back to the
        # queue (visibility 0): uncommitted transactions may still be
        # mid-log, deferred ones retry next run — either way, holding
        # their locks would hide them from the next commit phase and
        # reopen the reordering window.
        self._release_unapplied(assembler)
        return applied

    def _release_unapplied(self, assembler: TransactionAssembler) -> None:
        for txn in assembler.all_transactions():
            for handle in txn.handles:
                try:
                    self.account.sqs.change_message_visibility(
                        self.queue_url, handle, 0.0
                    )
                except ReceiptHandleInvalid:
                    pass  # superseded by a later receive; nothing to release

    # -- applying one transaction (§4.3 steps 2(b)-(d)) -------------------------------

    def _apply(self, txn: AssembledTransaction) -> None:
        faults = self.faults
        faults.check("daemon.apply.begin")
        if txn.txn_id in self._applied_txns:
            self.stats.duplicate_applies += 1
        assert txn.data is not None  # is_complete guarantees it

        # 2(b): COPY temp object to its real name, stamping the nonce.
        self._copy_with_retry(
            txn,
            txn.data["temp"],
            data_key(txn.data["subject"].rsplit(":v", 1)[0]),
            metadata={"nonce": txn.data["nonce"]},
        )
        faults.check("daemon.apply.after_copy")

        # Spilled >1 KB values become their own S3 objects.
        for record in txn.overflow:
            if record["t"] == "ovfl":
                call_with_retries(
                    self.account.s3.put, DATA_BUCKET, record["key"], record["value"]
                )
            else:  # ovfl_ptr: staged like data, promoted by COPY
                self._copy_with_retry(txn, record["temp"], record["key"])
        faults.check("daemon.apply.after_overflow")

        # 2(c): store the provenance items, ≤100 attributes per call,
        # each item on its shard's domain (same helper as the A2 path).
        for item_name, attributes in txn.items():
            put_provenance_item(self.account, self.routing, item_name, attributes)
        faults.check("daemon.apply.after_put_attributes")

        # 2(d): delete the WAL messages...
        for handle in txn.handles:
            try:
                self.account.sqs.delete_message(self.queue_url, handle)
            except ReceiptHandleInvalid:
                pass  # superseded handle from an earlier crashed run
        faults.check("daemon.apply.after_delete_messages")
        # ...and the temporary object(s).
        self.account.s3.delete(DATA_BUCKET, txn.data["temp"])
        for record in txn.overflow:
            if record["t"] == "ovfl_ptr":
                self.account.s3.delete(DATA_BUCKET, record["temp"])
        faults.check("daemon.apply.done")
        self._applied_txns.add(txn.txn_id)
        self.stats.transactions_applied += 1

    def _copy_with_retry(
        self,
        txn: AssembledTransaction,
        source: str,
        destination: str,
        metadata: dict[str, str] | None = None,
        attempts: int = 6,
    ) -> None:
        """COPY, riding out replica lag on the temp object.

        Each attempt samples a fresh replica; if none has the object the
        transaction is deferred to a later run. A replay whose temp was
        already deleted (this daemon applied the transaction, then
        crashed before clearing messages) is recognised via
        ``_applied_txns`` and treated as success — the data already sits
        at its real name because deletes happen last.
        """
        for _ in range(attempts):
            try:
                self.account.s3.copy(DATA_BUCKET, source, destination, metadata=metadata)
                return
            except NoSuchKey:
                continue
        if txn.txn_id in self._applied_txns:
            return
        if self.account.s3.exists_authoritative(DATA_BUCKET, source):
            raise _DeferTransaction(source)  # replica lag: retry next run
        # The temp object truly does not exist. If the destination already
        # holds this transaction's data (a replay by a *restarted* daemon
        # whose _applied_txns memory was lost), the transaction is done.
        destination_record = self.account.s3.authoritative_record(
            DATA_BUCKET, destination
        )
        if (
            metadata is not None
            and destination_record is not None
            and destination_record.metadata_dict.get("nonce") == metadata.get("nonce")
        ):
            return
        if metadata is None and destination_record is not None:
            return
        raise _DeferTransaction(source)


@dataclass
class CleanerStats:
    runs: int = 0
    objects_examined: int = 0
    objects_removed: int = 0


class CleanerDaemon:
    """Reaps temporary objects abandoned by uncommitted transactions.

    §4.3: "the temporary objects that have been stored on S3 must be
    explicitly removed if they belong to uncommitted transactions. We
    use a cleaner daemon to remove temporary objects that have not been
    accessed for 4 days."
    """

    def __init__(
        self,
        account: AWSAccount,
        max_age_seconds: float = 4 * SECONDS_PER_DAY,
    ):
        self.account = account
        self.max_age = max_age_seconds
        self.stats = CleanerStats()

    def run_once(self) -> list[str]:
        """Scan ``.pass/tmp/`` and delete objects past the age threshold."""
        self.stats.runs += 1
        removed = []
        marker: str | None = None
        now = self.account.clock.now
        while True:
            page = self.account.s3.list_keys(
                DATA_BUCKET, prefix=TEMP_PREFIX, marker=marker
            )
            for key in page.keys:
                self.stats.objects_examined += 1
                try:
                    head = self.account.s3.head(DATA_BUCKET, key)
                except NoSuchKey:
                    continue  # deleted since the LIST snapshot
                if now - head.last_modified >= self.max_age:
                    self.account.s3.delete(DATA_BUCKET, key)
                    removed.append(key)
            if not page.is_truncated:
                break
            marker = page.next_marker
        self.stats.objects_removed += len(removed)
        return removed
