"""The commit daemon and cleaner daemon of architecture A3 (paper §4.3).

**Commit daemon** — periodically checks the WAL queue's approximate
length; once past a threshold it drains the queue, reassembles
transactions, and applies every *complete* one:

1. COPY the temporary data object to its real name, stamping the nonce
   (COPY, not rename, so a replay after a crash can re-run — §4.3);
2. PUT any spilled >1 KB values to their overflow objects;
3. PutAttributes the provenance items (≤100 attributes per call);
4. DeleteMessage all of the transaction's WAL records;
5. DELETE the temporary object.

Every step is idempotent, because the daemon may crash after applying
but before deleting the messages, in which case the records are received
and applied *again* after the visibility timeout — S3 and SimpleDB
semantics make the replay harmless (§4.3's idempotency argument, which
the property-based tests hammer).

Transactions with a commit record but missing pieces keep being polled
for (SQS sampling can hide messages); transactions with no commit record
are ignored — the client died mid-log — and SQS's 4-day retention reaps
their records.

**Cleaner daemon** — temporary objects staged by clients that crashed
before committing are invisible to the commit daemon; the cleaner lists
``.pass/tmp/`` and deletes anything older than the 4-day window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aws.account import AWSAccount
from repro.aws.faults import NO_FAULTS, FaultPlan
from repro.core.base import (
    DATA_BUCKET,
    TEMP_PREFIX,
    call_with_retries,
    data_key,
    put_provenance_item,
    put_provenance_items,
)
from repro.core.coalesce import resolve_write_batch
from repro.core.wal import AssembledTransaction, TransactionAssembler
from repro.errors import NoSuchKey, ReceiptHandleInvalid
from repro.migration.handle import RouterHandle, as_handle, fresh_handle
from repro.passlib.records import ObjectRef
from repro.sharding import ShardRouter
from repro.units import (
    SECONDS_PER_DAY,
    SQS_MAX_BATCH_ENTRIES,
    SQS_RETENTION_SECONDS,
)


@dataclass
class CommitDaemonStats:
    """Counters exposed for tests, benchmarks, and examples."""

    runs: int = 0
    transactions_applied: int = 0
    messages_received: int = 0
    duplicate_applies: int = 0
    incomplete_rounds: int = 0
    transactions_deferred: int = 0


class _DeferTransaction(Exception):
    """The transaction cannot apply yet (replica lag); retry next run.

    Raised when the temporary object a ``data`` record points at is not
    visible on any sampled replica — under eventual consistency the PUT
    may simply not have propagated. The transaction's messages stay on
    the queue (locked until the visibility timeout) and a later commit
    run retries; §4.3's 'eventually stored' argument in action.
    """


class CommitDaemon:
    """Drains the WAL queue and applies committed transactions."""

    def __init__(
        self,
        account: AWSAccount,
        queue_url: str,
        threshold: int = 10,
        receive_batch: int = 10,
        max_rounds: int = 50,
        empty_rounds_to_stop: int = 4,
        visibility_timeout: float = 120.0,
        faults: FaultPlan = NO_FAULTS,
        router: ShardRouter | RouterHandle | None = None,
        write_batch: int | None = None,
    ):
        self.account = account
        self.queue_url = queue_url
        #: Routes each provenance item to its shard store — and, under a
        #: heterogeneous placement, to that shard's backend (SimpleDB or
        #: the DynamoDB-style table; both merge writes as sets, so the
        #: replay-idempotency argument above holds per backend). The
        #: daemon shares the store's :class:`RouterHandle`, so during a
        #: live migration its applies observe the same double-write
        #: window and per-shard cutovers as the client write path — a
        #: transaction logged before a migration and applied after it
        #: lands on the layout that is authoritative *at apply time*.
        #: The default single-shard router reproduces the paper's
        #: one-domain layout.
        self.routing = as_handle(router) if router is not None else fresh_handle()
        self.threshold = threshold
        self.receive_batch = receive_batch
        self.max_rounds = max_rounds
        self.empty_rounds_to_stop = empty_rounds_to_stop
        self.visibility_timeout = visibility_timeout
        self.faults = faults
        #: Group-commit width: how many complete transactions one apply
        #: round bundles into shared batch writes. ``1`` (the default,
        #: or ``REPRO_WRITE_BATCH``) is the paper's one-transaction-at-a-
        #: time path, byte-identical on the meter.
        self.write_batch = resolve_write_batch(write_batch)
        self.stats = CommitDaemonStats()
        #: Transactions applied, mapped to the simulated time they were
        #: marked — kept to recognise duplicate replays. Bounded: see
        #: :meth:`_mark_applied`.
        self._applied_txns: dict[str, float] = {}

    # -- the monitor loop entry points --------------------------------------

    def run_once(self, force: bool = False) -> int:
        """One monitor tick: commit if the queue looks full enough.

        Returns the number of transactions applied. ``force`` skips the
        threshold check (used at shutdown and in tests).
        """
        approx = self.account.sqs.approximate_number_of_messages(self.queue_url)
        if not force and approx < self.threshold:
            return 0
        return self.commit_phase()

    def drain(self) -> int:
        """Commit until the queue is (apparently) empty. Returns applies."""
        total = 0
        for _ in range(self.max_rounds):
            applied = self.commit_phase()
            total += applied
            if applied == 0:
                break
        return total

    # -- the commit phase (§4.3 step 2) ------------------------------------------

    def commit_phase(self) -> int:
        """Receive, assemble, apply complete transactions."""
        self.stats.runs += 1
        assembler = TransactionAssembler()
        empty_rounds = 0
        rounds = 0
        # 2(a): receive as many messages as possible; keep going while
        # committed transactions are missing pieces (sampling can hide
        # messages from any single receive).
        while rounds < self.max_rounds:
            rounds += 1
            batch = self.account.sqs.receive_message(
                self.queue_url,
                max_messages=self.receive_batch,
                visibility_timeout=self.visibility_timeout,
            )
            self.stats.messages_received += len(batch)
            for message in batch:
                assembler.add(message)
            if batch:
                empty_rounds = 0
                continue
            empty_rounds += 1
            if assembler.pending_commits():
                self.stats.incomplete_rounds += 1
                if empty_rounds >= self.empty_rounds_to_stop * 2:
                    break  # pieces are locked elsewhere; retry next run
                continue
            if empty_rounds >= self.empty_rounds_to_stop:
                break

        # Apply strictly in transaction order. A WAL must replay in
        # order: the paper's "the order in which we process the records
        # does not matter" holds across *different* objects, but two
        # committed versions of the same object must land oldest-first
        # or a deferred old transaction could later overwrite new data.
        # Because each client logs transactions sequentially, an
        # earlier-id transaction that is present but not yet applicable
        # blocks everything after it — unless it was logged by a *dead*
        # incarnation (older epoch, no commit record): that transaction
        # can never complete and retention will reap it.
        applied = 0
        blocking_id: str | None = None
        present = assembler.all_transactions()
        for index, txn in enumerate(present):
            if txn.is_complete:
                continue
            if not txn.committed and index < len(present) - 1:
                # The client logs transactions one at a time, so an
                # uncommitted transaction with a successor on the queue
                # was abandoned mid-log: it can never complete. Skip it
                # (retention reaps its records).
                continue
            blocking_id = txn.txn_id
            break
        if self.write_batch > 1:
            applied += self._apply_rounds(assembler, blocking_id)
        else:
            for txn in assembler.complete():
                if blocking_id is not None and txn.txn_id > blocking_id:
                    self.stats.transactions_deferred += 1
                    continue
                try:
                    self._apply(txn)
                except _DeferTransaction:
                    self.stats.transactions_deferred += 1
                    break  # strict order: nothing after may jump the queue
                applied += 1
                assembler.forget(txn.txn_id)
        # Hand every message we could not act on straight back to the
        # queue (visibility 0): uncommitted transactions may still be
        # mid-log, deferred ones retry next run — either way, holding
        # their locks would hide them from the next commit phase and
        # reopen the reordering window.
        self._release_unapplied(assembler)
        return applied

    def _release_unapplied(self, assembler: TransactionAssembler) -> None:
        for txn in assembler.all_transactions():
            for handle in txn.handles:
                try:
                    self.account.sqs.change_message_visibility(
                        self.queue_url, handle, 0.0
                    )
                except ReceiptHandleInvalid:
                    pass  # superseded by a later receive; nothing to release

    # -- applying one transaction (§4.3 steps 2(b)-(d)) -------------------------------

    def _apply(self, txn: AssembledTransaction) -> None:
        faults = self.faults
        faults.check("daemon.apply.begin")
        if txn.txn_id in self._applied_txns:
            self.stats.duplicate_applies += 1
        assert txn.data is not None  # is_complete guarantees it

        # 2(b): COPY temp object to its real name, stamping the nonce.
        self._copy_with_retry(
            txn,
            txn.data["temp"],
            self._destination_key(txn),
            metadata={"nonce": txn.data["nonce"]},
        )
        faults.check("daemon.apply.after_copy")

        # Spilled >1 KB values become their own S3 objects.
        for record in txn.overflow:
            if record["t"] == "ovfl":
                call_with_retries(
                    self.account.s3.put, DATA_BUCKET, record["key"], record["value"]
                )
            else:  # ovfl_ptr: staged like data, promoted by COPY
                self._copy_with_retry(txn, record["temp"], record["key"])
        faults.check("daemon.apply.after_overflow")

        # 2(c): store the provenance items, ≤100 attributes per call,
        # each item on its shard's domain (same helper as the A2 path).
        for item_name, attributes in txn.items():
            put_provenance_item(self.account, self.routing, item_name, attributes)
        faults.check("daemon.apply.after_put_attributes")

        # 2(d): delete the WAL messages...
        for handle in txn.handles:
            try:
                self.account.sqs.delete_message(self.queue_url, handle)
            except ReceiptHandleInvalid:
                pass  # superseded handle from an earlier crashed run
        faults.check("daemon.apply.after_delete_messages")
        # ...and the temporary object(s).
        self.account.s3.delete(DATA_BUCKET, txn.data["temp"])
        for record in txn.overflow:
            if record["t"] == "ovfl_ptr":
                self.account.s3.delete(DATA_BUCKET, record["temp"])
        faults.check("daemon.apply.done")
        self._mark_applied(txn.txn_id)
        self.stats.transactions_applied += 1

    @staticmethod
    def _destination_key(txn: AssembledTransaction) -> str:
        """Real S3 key for a transaction's data object.

        The data record's subject is the serialiser's ``name:vNNNN``
        encoding, so it must be parsed with the serialiser's own
        inverse (:meth:`ObjectRef.decode`) rather than a hand-rolled
        ``rsplit(":v", 1)``: the two agree on every well-formed
        encoding — including pathological paths whose *name* contains
        or ends in a ``:v`` digit run — but on a corrupted record the
        hand parse silently mangles the name and COPYs over some other
        object's data, where decode raises and surfaces the corruption.
        """
        return data_key(ObjectRef.decode(txn.data["subject"]).name)

    def _mark_applied(self, txn_id: str) -> None:
        """Remember an applied transaction, bounded by SQS retention.

        Duplicate-replay detection only needs to remember a transaction
        while its WAL messages can still come back — and retention reaps
        any message older than :data:`SQS_RETENTION_SECONDS`, so entries
        marked more than a retention window ago can never be replayed
        and are pruned here. Without the horizon this set grows by one
        entry per transaction for the life of the daemon. Entries are
        inserted in clock order, so pruning pops from the front.
        """
        now = self.account.clock.now
        self._applied_txns[txn_id] = now
        horizon = now - SQS_RETENTION_SECONDS
        for old_id, marked_at in list(self._applied_txns.items()):
            if marked_at >= horizon:
                break
            del self._applied_txns[old_id]

    # -- group commit (write_batch > 1) -------------------------------------

    def _apply_rounds(self, assembler: TransactionAssembler, blocking_id: str | None) -> int:
        """Apply complete transactions in groups of ``write_batch``.

        Same eligibility and strict-order rules as the one-at-a-time
        loop: transactions past a blocking incomplete one defer, and a
        deferral inside a group truncates it — nothing after the stuck
        transaction may jump the queue, because a later version of the
        same object could otherwise land before an earlier one.
        """
        eligible: list[AssembledTransaction] = []
        for txn in assembler.complete():
            if blocking_id is not None and txn.txn_id > blocking_id:
                self.stats.transactions_deferred += 1
                continue
            eligible.append(txn)
        applied = 0
        for start in range(0, len(eligible), self.write_batch):
            group = eligible[start : start + self.write_batch]
            done = self._apply_group(group)
            applied += len(done)
            for txn in done:
                assembler.forget(txn.txn_id)
            if len(done) < len(group):
                self.stats.transactions_deferred += 1
                break  # strict order: nothing after may jump the queue
        return applied

    def _apply_group(
        self, txns: list[AssembledTransaction]
    ) -> list[AssembledTransaction]:
        """Steps 2(b)-(d) for a whole group of transactions at once.

        The S3 side (COPY temp→real, overflow promotion) stays
        per-transaction and in order — COPY is last-writer-wins, so
        same-object transactions must copy oldest-first. The batched
        part is everything idempotent-by-merge: the group's provenance
        items go out as one batched put per shard site (set-merge on
        every backend, so ordering inside a batch is immaterial), and
        the group's WAL messages are deleted in ≤10-handle
        DeleteMessageBatch calls. The §4.3 replay argument is unchanged:
        a crash anywhere in here leaves messages undeleted, the replay
        re-COPYs and re-merges, and ``_applied_txns`` (marked only after
        the whole group lands) counts the duplicates.

        Returns the transactions actually applied; a transaction whose
        temp object is not yet visible truncates the group there.
        """
        faults = self.faults
        ready: list[AssembledTransaction] = []
        for txn in txns:
            faults.check("daemon.apply.begin")
            if txn.txn_id in self._applied_txns:
                self.stats.duplicate_applies += 1
            assert txn.data is not None  # is_complete guarantees it
            try:
                self._copy_with_retry(
                    txn,
                    txn.data["temp"],
                    self._destination_key(txn),
                    metadata={"nonce": txn.data["nonce"]},
                )
                faults.check("daemon.apply.after_copy")
                for record in txn.overflow:
                    if record["t"] == "ovfl":
                        call_with_retries(
                            self.account.s3.put,
                            DATA_BUCKET,
                            record["key"],
                            record["value"],
                        )
                    else:  # ovfl_ptr: staged like data, promoted by COPY
                        self._copy_with_retry(txn, record["temp"], record["key"])
                faults.check("daemon.apply.after_overflow")
            except _DeferTransaction:
                break
            ready.append(txn)
        if not ready:
            return []

        # 2(c), group-committed: one routed batch for every item in the
        # round — per-site BatchPutAttributes / BatchWriteItem calls.
        items: list[tuple[str, list[tuple[str, str]]]] = []
        for txn in ready:
            items.extend(txn.items())
        put_provenance_items(self.account, self.routing, items)
        faults.check("daemon.apply.after_put_attributes")

        # 2(d): delete the group's WAL messages in batch calls. The
        # batch API reports superseded handles as per-entry failures —
        # the same stale handles the single path tolerates one
        # ReceiptHandleInvalid at a time.
        handles = [handle for txn in ready for handle in txn.handles]
        for chunk_start in range(0, len(handles), SQS_MAX_BATCH_ENTRIES):
            self.account.sqs.delete_message_batch(
                self.queue_url,
                handles[chunk_start : chunk_start + SQS_MAX_BATCH_ENTRIES],
            )
        faults.check("daemon.apply.after_delete_messages")
        # ...and the temporary object(s).
        for txn in ready:
            self.account.s3.delete(DATA_BUCKET, txn.data["temp"])
            for record in txn.overflow:
                if record["t"] == "ovfl_ptr":
                    self.account.s3.delete(DATA_BUCKET, record["temp"])
        faults.check("daemon.apply.done")
        for txn in ready:
            self._mark_applied(txn.txn_id)
            self.stats.transactions_applied += 1
        return ready

    def _copy_with_retry(
        self,
        txn: AssembledTransaction,
        source: str,
        destination: str,
        metadata: dict[str, str] | None = None,
        attempts: int = 6,
    ) -> None:
        """COPY, riding out replica lag on the temp object.

        Each attempt samples a fresh replica; if none has the object the
        transaction is deferred to a later run. A replay whose temp was
        already deleted (this daemon applied the transaction, then
        crashed before clearing messages) is recognised via
        ``_applied_txns`` and treated as success — the data already sits
        at its real name because deletes happen last.
        """
        for _ in range(attempts):
            try:
                self.account.s3.copy(DATA_BUCKET, source, destination, metadata=metadata)
                return
            except NoSuchKey:
                continue
        if txn.txn_id in self._applied_txns:
            return
        if self.account.s3.exists_authoritative(DATA_BUCKET, source):
            raise _DeferTransaction(source)  # replica lag: retry next run
        # The temp object truly does not exist. If the destination already
        # holds this transaction's data (a replay by a *restarted* daemon
        # whose _applied_txns memory was lost), the transaction is done.
        destination_record = self.account.s3.authoritative_record(
            DATA_BUCKET, destination
        )
        if (
            metadata is not None
            and destination_record is not None
            and destination_record.metadata_dict.get("nonce") == metadata.get("nonce")
        ):
            return
        if metadata is None and destination_record is not None:
            return
        raise _DeferTransaction(source)


@dataclass
class CleanerStats:
    runs: int = 0
    objects_examined: int = 0
    objects_removed: int = 0


class CleanerDaemon:
    """Reaps temporary objects abandoned by uncommitted transactions.

    §4.3: "the temporary objects that have been stored on S3 must be
    explicitly removed if they belong to uncommitted transactions. We
    use a cleaner daemon to remove temporary objects that have not been
    accessed for 4 days."
    """

    def __init__(
        self,
        account: AWSAccount,
        max_age_seconds: float = 4 * SECONDS_PER_DAY,
        page_size: int = 1000,
    ):
        self.account = account
        self.max_age = max_age_seconds
        #: LIST page size (``max_keys``) — tests shrink it to force
        #: multi-page scans.
        self.page_size = page_size
        self.stats = CleanerStats()

    def run_once(self) -> list[str]:
        """Scan ``.pass/tmp/`` and delete objects past the age threshold."""
        self.stats.runs += 1
        removed = []
        marker: str | None = None
        while True:
            # Re-read the clock each page: a long scan takes time, and
            # an object crossing the age threshold mid-scan must be
            # judged against the time its page is actually examined.
            # Snapshotting ``now`` once before the loop under-deletes
            # near the boundary on exactly the large backlogs the
            # cleaner exists for.
            now = self.account.clock.now
            page = self.account.s3.list_keys(
                DATA_BUCKET,
                prefix=TEMP_PREFIX,
                marker=marker,
                max_keys=self.page_size,
            )
            for key in page.keys:
                self.stats.objects_examined += 1
                try:
                    head = self.account.s3.head(DATA_BUCKET, key)
                except NoSuchKey:
                    continue  # deleted since the LIST snapshot
                if now - head.last_modified >= self.max_age:
                    self.account.s3.delete(DATA_BUCKET, key)
                    removed.append(key)
            if not page.is_truncated:
                break
            marker = page.next_marker
        self.stats.objects_removed += len(removed)
        return removed
