"""Client-side write coalescer: group commit for provenance puts.

The paper's write path issues one service round trip per provenance
item (§4.2 step 3 / §4.3 step 2(c)), so a burst of small records pays
per-request charges N times. This module sits between the capture layer
and the stores: callers hand it items one at a time, it buffers up to
``batch_size`` of them, and each flush lands the whole buffer through
:func:`repro.core.base.put_provenance_items` — which splits the batch
per *write-plan site*, so shard placement, backend choice, and
migration double-write fan-out are all preserved per item.

Durability trade-off, stated honestly: items sitting in the buffer are
client memory, not cloud state. A client crash loses at most one
unflushed buffer (< ``batch_size`` items) — the same exposure the
paper's A1 local-log client accepts between flushes — while anything
already WAL-logged (A3) or already flushed survives. The property suite
pins exactly that bound.

``batch_size=1`` (the default everywhere) bypasses the buffer entirely
and delegates to the legacy single-item path, byte-identical on the
billing meter — the invariant the frozen-reference meter-identity
property enforces.

The knob: pass ``write_batch=`` to :class:`~repro.sim.Simulation` /
:class:`~repro.fleet.ClientFleet` / the stores, use ``repro demo
--write-batch N``, or set :data:`WRITE_BATCH_ENV` for a whole suite run
(CI exercises ``REPRO_WRITE_BATCH=8``).
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.aws.account import AWSAccount
from repro.core.base import put_provenance_item, put_provenance_items
from repro.migration.handle import RouterHandle
from repro.sharding import ShardRouter

#: Environment variable giving the default coalescer batch size.
WRITE_BATCH_ENV = "REPRO_WRITE_BATCH"


def resolve_write_batch(write_batch: int | None = None) -> int:
    """Normalise the write-batch knob: argument, else environment, else 1.

    >>> resolve_write_batch(8)
    8
    >>> resolve_write_batch()  # with REPRO_WRITE_BATCH unset
    1
    """
    if write_batch is None:
        text = os.environ.get(WRITE_BATCH_ENV, "").strip()
        write_batch = int(text) if text else 1
    batch = int(write_batch)
    if batch < 1:
        raise ValueError(f"write batch must be >= 1, got {write_batch!r}")
    return batch


class WriteCoalescer:
    """Buffer provenance item puts and flush them as per-site batches.

    Explicit flush points only — size (the buffer reaches
    ``batch_size``) and close (the caller is done and drains the
    remainder). There is no timer: the simulation's clock only moves
    when services or backoffs move it, so a time-based flush would be
    untestable and dishonest.
    """

    def __init__(
        self,
        account: AWSAccount,
        routing: RouterHandle | ShardRouter,
        batch_size: int | None = None,
    ):
        self.account = account
        self.routing = routing
        self.batch_size = resolve_write_batch(batch_size)
        self._buffer: list[tuple[str, list[tuple[str, str]]]] = []
        #: Batched flushes issued (observability for benchmarks/tests).
        self.flushes = 0
        #: Items that travelled inside a batched flush.
        self.coalesced_items = 0

    @property
    def pending(self) -> int:
        """Items buffered but not yet durable anywhere."""
        return len(self._buffer)

    def put(self, item_name: str, attributes: Iterable[tuple[str, str]]) -> None:
        """Buffer one item, flushing when the buffer reaches size.

        With ``batch_size=1`` this *is* the legacy
        :func:`put_provenance_item` call — same requests, same meter.
        """
        attrs = list(attributes)
        if self.batch_size <= 1:
            put_provenance_item(self.account, self.routing, item_name, attrs)
            return
        self._buffer.append((item_name, attrs))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Land the buffered items now; returns how many were flushed.

        The buffer is detached before the writes go out: a fault mid-
        flush leaves this coalescer empty, so a recovering caller
        re-puts (idempotent set-merge) rather than double-buffering.
        """
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        put_provenance_items(self.account, self.routing, batch)
        self.flushes += 1
        self.coalesced_items += len(batch)
        return len(batch)

    def close(self) -> int:
        """Drain the remainder (flush-on-close); returns items flushed."""
        return self.flush()
