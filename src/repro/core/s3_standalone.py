"""Architecture A1 — Standalone S3 (paper §4.1, Figure 1).

PASS uses S3 as the storage layer for *both* data and provenance: each
PASS file maps to one S3 object and the file's provenance travels as the
object's user metadata in the very same PUT. Because S3 applies a PUT
atomically, data and provenance are stored together or not at all —
**read correctness holds by construction** — and causal ordering holds
because flush events arrive ancestors-first. The price is query: the
only way to read provenance is a HEAD per object, so any search must
scan the whole repository (Table 1's missing check mark; Table 3's
scan costs).

Protocol on file close (§4.1):

1. read the data cache file and provenance cache file of the object;
2. convert the provenance into attribute-value pairs as required by S3;
3. issue a single PUT carrying the object and its provenance metadata.

Engineering notes faithful to the paper's discussion:

* values larger than 1 KB are stored in separate S3 objects to stay
  inside the 2 KB metadata limit (the paper measures 24,952 of these);
  we write the overflow objects *before* the main PUT so a reader can
  never observe a dangling pointer — a crash in between leaves only
  unreferenced garbage, preserving read correctness;
* transient ancestors (process provenance) piggyback on the metadata of
  the first output file that references them, which is why process
  provenance "regularly exceeds" the metadata limit;
* because the file's S3 object is overwritten in place, only the
  *current* version's provenance is reachable by HEAD — superseded
  versions survive only through their spilled overflow objects. This is
  an inherent limitation of A1 that the SimpleDB architectures fix.
"""

from __future__ import annotations

from repro.aws.account import AWSAccount
from repro.aws.faults import NO_FAULTS, FaultPlan
from repro.core.base import (
    call_with_retries,
    Component,
    DATA_BUCKET,
    Flow,
    ProvenanceCloudStore,
    ReadResult,
    RetryPolicy,
    data_key,
)
from repro.errors import ReadCorrectnessViolation
from repro.passlib.records import FlushEvent, ObjectRef
from repro.passlib.serializer import (
    S3MetadataPayload,
    bundles_from_s3_metadata,
    parse_nonce,
    to_s3_metadata,
)


class S3Standalone(ProvenanceCloudStore):
    """Provenance as S3 object metadata — one atomic PUT per close."""

    name = "s3"

    def __init__(
        self,
        account: AWSAccount,
        faults: FaultPlan = NO_FAULTS,
        retry: RetryPolicy | None = None,
        shards: int = 1,
        router=None,
    ):
        # A1 keeps no SimpleDB domain; the router is accepted (so the
        # fleet can construct every architecture uniformly) but unused.
        super().__init__(account, faults, retry, shards=shards, router=router)
        self.overflow_objects_written = 0

    def _do_provision(self) -> None:
        self._ensure_bucket(DATA_BUCKET)

    # -- store protocol (§4.1) ---------------------------------------------

    def _do_store(self, event: FlushEvent) -> None:
        faults = self.faults
        faults.check("a1.store.begin")
        # Step 1-2: read caches and serialise (the flush event *is* the
        # cache contents; serialisation may spill >1KB values).
        payload: S3MetadataPayload = to_s3_metadata(event)
        faults.check("a1.store.serialized")
        # Overflow objects first: a crash between overflow PUTs and the
        # main PUT leaves unreferenced garbage, never a dangling pointer.
        for overflow in payload.overflow:
            call_with_retries(
                self.account.s3.put, DATA_BUCKET, overflow.key, overflow.value
            )
            self.overflow_objects_written += 1
            faults.check("a1.store.overflow_put")
        faults.check("a1.store.before_put")
        # Step 3: the single PUT carrying both data and provenance.
        call_with_retries(
            self.account.s3.put,
            DATA_BUCKET,
            data_key(event.subject.name),
            event.data,
            metadata=payload.metadata,
        )
        faults.check("a1.store.done")

    # -- read protocol ----------------------------------------------------------

    def _do_read(self, name: str, version: int | None) -> ReadResult:
        result = self.account.s3.get(DATA_BUCKET, data_key(name))
        subject, bundle = self._decode(name, result.metadata)
        if version is not None and subject.version != version:
            raise ReadCorrectnessViolation(
                f"{name}: S3 holds version {subject.version}; version "
                f"{version} is not reachable in the standalone-S3 design"
            )
        return ReadResult(
            subject=subject,
            data=result.blob,
            bundle=bundle,
            consistent=True,  # data+provenance came from one object
        )

    def head_provenance(self, name: str) -> ReadResult:
        """Read provenance only, via HEAD (the §4.1 query primitive)."""
        self.provision()
        head = self.account.s3.head(DATA_BUCKET, data_key(name))
        subject, bundle = self._decode(name, head.metadata)
        return ReadResult(subject=subject, data=None, bundle=bundle, consistent=True)

    def _decode(self, name: str, metadata: dict[str, str]):
        nonce = metadata.get("nonce", "v0001")
        version = parse_nonce(nonce)
        if version is None:
            raise ReadCorrectnessViolation(f"{name}: malformed nonce {nonce!r}")
        subject = ObjectRef(name, version)

        def fetch_overflow(key: str) -> str:
            blob_result = self.account.s3.get(DATA_BUCKET, key)
            return blob_result.bytes().decode("utf-8")

        bundle, _ancestors = bundles_from_s3_metadata(subject, metadata, fetch_overflow)
        return subject, bundle

    def read_with_ancestors(self, name: str):
        """Read the full metadata payload including piggybacked ancestors."""
        self.provision()
        result = self.account.s3.get(DATA_BUCKET, data_key(name))
        nonce = result.metadata.get("nonce", "v0001")
        version = parse_nonce(nonce)
        if version is None:
            raise ReadCorrectnessViolation(f"{name}: malformed nonce {nonce!r}")
        subject = ObjectRef(name, version)

        def fetch_overflow(key: str) -> str:
            return self.account.s3.get(DATA_BUCKET, key).bytes().decode("utf-8")

        return bundles_from_s3_metadata(subject, result.metadata, fetch_overflow)

    # -- diagram (Figure 1) ------------------------------------------------------

    def components(self) -> list[Component]:
        return [
            Component("application", "issues read/write/close system calls"),
            Component("pass", "PASS capture layer + local cache"),
            Component("s3", "Amazon S3: data objects with provenance metadata"),
        ]

    def flows(self) -> list[Flow]:
        return [
            Flow("application", "pass", "system calls"),
            Flow("pass", "s3", "PUT(data + provenance metadata) on close"),
            Flow("s3", "pass", "GET data / HEAD provenance"),
        ]
