"""Executable Table 1: property checkers for the three architectures.

The paper defines three required properties (§3) and asserts which
architecture satisfies which (Table 1):

===================  =========  ===========  ==============  ===============
architecture         atomicity  consistency  causal ordering  efficient query
===================  =========  ===========  ==============  ===============
s3                   yes        yes          yes              **no**
s3+simpledb          **no**     yes          yes              yes
s3+simpledb+sqs      yes        yes          yes              yes
===================  =========  ===========  ==============  ===============

This module re-derives that table *experimentally*:

* **atomicity** — crash the client at every fault point of the store
  protocol; after each crash run the architecture's designed recovery
  (for A3, a fresh commit daemon; for A1/A2, nothing automatic exists)
  and require that data and provenance either both became visible or
  neither did;
* **consistency** — under an adversarial eventual-consistency window,
  rewrite an object repeatedly and read it back immediately; require
  that every read the architecture *returns* pairs data with matching
  provenance (internal retries are allowed — that is the mechanism);
* **causal ordering** — crash the client at every event boundary of a
  dependency chain; require that the eventually-visible provenance is
  closed under ancestry;
* **efficient query** — store a repository of n objects and require that
  the architecture's Q2 costs grow sublinearly (far fewer operations
  than objects), which indexed SimpleDB achieves and the S3 scan cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.faults import FaultPlan
from repro.blob import BytesBlob
from repro.core.base import DATA_BUCKET, PROV_DOMAIN, ProvenanceCloudStore, RetryPolicy
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.core.s3_standalone import S3Standalone
from repro.errors import ClientCrash, ReadCorrectnessViolation
from repro.passlib.capture import PassSystem
from repro.passlib.records import FlushEvent, ObjectRef
from repro.query.ancestry import AncestryWalker
from repro.migration.handle import fresh_handle

#: The paper's Table 1, as (atomicity, consistency, causal, query).
PAPER_TABLE1 = {
    "s3": (True, True, True, False),
    "s3+simpledb": (False, True, True, True),
    "s3+simpledb+sqs": (True, True, True, True),
}

_FACTORIES = {
    "s3": S3Standalone,
    "s3+simpledb": S3SimpleDB,
    "s3+simpledb+sqs": S3SimpleDBSQS,
}


@dataclass
class PropertyReport:
    """The measured Table 1 row for one architecture."""

    architecture: str
    atomicity: bool
    consistency: bool
    causal_ordering: bool
    efficient_query: bool
    details: dict[str, str] = field(default_factory=dict)

    @property
    def read_correctness(self) -> bool:
        """Read correctness = atomicity ∧ consistency (§3)."""
        return self.atomicity and self.consistency

    def as_row(self) -> tuple[str, bool, bool, bool, bool]:
        return (
            self.architecture,
            self.atomicity,
            self.consistency,
            self.causal_ordering,
            self.efficient_query,
        )

    def matches_paper(self) -> bool:
        return PAPER_TABLE1[self.architecture] == (
            self.atomicity,
            self.consistency,
            self.causal_ordering,
            self.efficient_query,
        )


# ---------------------------------------------------------------------------
# World construction helpers
# ---------------------------------------------------------------------------

def _build(
    architecture: str,
    seed: int,
    faults: FaultPlan | None = None,
    consistency: ConsistencyConfig | None = None,
) -> tuple[AWSAccount, ProvenanceCloudStore]:
    account = AWSAccount(
        seed=seed,
        consistency=consistency or ConsistencyConfig.eventual(window=2.0),
    )
    retry = RetryPolicy(attempts=12, wait=lambda: account.clock.advance(0.5))
    # Table 1 characterises the *paper's* architectures, whose
    # provenance store is SimpleDB — the placement stays pinned whatever
    # REPRO_BACKEND_PLACEMENT says (backend tradeoffs are measured by
    # the multibackend benchmark, not re-litigated here).
    store = _FACTORIES[architecture](
        account,
        faults=faults or FaultPlan(),
        retry=retry,
        router=fresh_handle(placement="sdb"),
    )
    return account, store


def _chain_trace(n_links: int = 3, prefix: str = "chain") -> list[FlushEvent]:
    """A dependency chain: input → stage1 → … → stageN (one file each)."""
    pas = PassSystem(workload="chain")
    pas.stage_input(f"{prefix}/input.dat", BytesBlob(b"source data"))
    previous = f"{prefix}/input.dat"
    for i in range(n_links):
        with pas.process(f"stage{i}", argv=f"--step {i}") as proc:
            proc.read(previous)
            path = f"{prefix}/out{i}.dat"
            proc.write(path, f"derived {i}".encode())
            proc.close(path)
            previous = path
    return pas.drain_flushes()


def _rewrite_trace(versions: int = 4) -> tuple[list[FlushEvent], dict[int, str]]:
    """One file rewritten ``versions`` times; returns events + md5 oracle."""
    pas = PassSystem(workload="rewrite")
    md5_by_version: dict[int, str] = {}
    events: list[FlushEvent] = []
    for i in range(versions):
        with pas.process("writer", argv=f"--round {i}") as proc:
            blob = BytesBlob(f"content round {i}".encode())
            ref = proc.write("doc/report.txt", blob)
            event = proc.close("doc/report.txt")
            md5_by_version[ref.version] = blob.md5()
            events.append(event)
    # Freeze each version by observation so every round cuts a new one.
    return events, md5_by_version


def _blast_trace(n_queries: int = 8) -> list[FlushEvent]:
    """A miniature Blast-shaped repository for the query check."""
    pas = PassSystem(workload="mini-blast")
    pas.stage_input("db/nr.fasta", BytesBlob(b"protein database"))
    for i in range(n_queries):
        pas.stage_input(f"queries/q{i}.fa", BytesBlob(f"query {i}".encode()))
        with pas.process("blast", argv=f"-db nr -query q{i}.fa") as blast:
            blast.read("db/nr.fasta")
            blast.read(f"queries/q{i}.fa")
            blast.write(f"out/q{i}.blast", f"hits for {i}".encode())
            blast.close(f"out/q{i}.blast")
        with pas.process("postprocess", argv=f"--in q{i}.blast") as post:
            post.read(f"out/q{i}.blast")
            post.write(f"out/q{i}.summary", f"summary {i}".encode())
            post.close(f"out/q{i}.summary")
    return pas.drain_flushes()


def _recover(store: ProvenanceCloudStore, account: AWSAccount) -> None:
    """Run the architecture's *designed* crash recovery, then quiesce.

    A3 restarts its commit daemon (fresh in-memory state, like a reboot)
    and drains the WAL. A1/A2 have no automatic recovery — that absence
    is precisely what the atomicity check exposes for A2. The clock
    jumps past the SQS visibility timeout so in-flight receives expire.
    """
    if isinstance(store, S3SimpleDBSQS):
        account.clock.advance(300.0)
        store.restart_commit_daemon().drain()
    account.quiesce()


# ---------------------------------------------------------------------------
# Property checks
# ---------------------------------------------------------------------------

def check_atomicity(architecture: str, seed: int = 0) -> tuple[bool, str]:
    """Crash the store protocol at every fault point; judge the aftermath."""
    baseline = _chain_trace(2, prefix="baseline")
    victim_trace = _chain_trace(2, prefix="victim")
    victim = victim_trace[-1]

    # Dry run to size the crash surface of one store() call.
    dry_plan = FaultPlan()
    account, store = _build(architecture, seed, faults=dry_plan)
    store.store_trace(baseline)
    calls_before = len(dry_plan.log)
    store.store(victim_trace[-1])
    crash_surface = len(dry_plan.log) - calls_before
    if crash_surface == 0:
        return False, "store protocol exposes no fault points"

    violations: list[str] = []
    for crash_call in range(1, crash_surface + 1):
        plan = FaultPlan()
        account, store = _build(architecture, seed + crash_call, faults=plan)
        store.store_trace(baseline)
        for event in victim_trace[:-1]:
            store.store(event)
        plan.crash_at_call(len(plan.log) + crash_call)
        crashed_at = "no-crash"
        try:
            store.store(victim)
        except ClientCrash as crash:
            crashed_at = crash.point
        plan.disarm()
        _recover(store, account)
        data_stored = _data_visible(account, victim)
        prov_stored = _provenance_visible(account, store, victim)
        if data_stored != prov_stored:
            violations.append(
                f"crash at {crashed_at!r}: data={data_stored} prov={prov_stored}"
            )
    detail = (
        f"{crash_surface} crash points, {len(violations)} violations"
        + (f" (first: {violations[0]})" if violations else "")
    )
    return not violations, detail


def _data_visible(account: AWSAccount, event: FlushEvent) -> bool:
    record = account.s3.authoritative_record(DATA_BUCKET, event.subject.name)
    if record is None:
        return False
    return record.metadata_dict.get("nonce") == event.nonce


def _provenance_visible(
    account: AWSAccount, store: ProvenanceCloudStore, event: FlushEvent
) -> bool:
    if isinstance(store, S3SimpleDB):  # covers A2 and A3
        item = account.simpledb.authoritative_item(
            PROV_DOMAIN, event.subject.item_name
        )
        return item is not None
    # A1: provenance is only reachable through the object's metadata.
    record = account.s3.authoritative_record(DATA_BUCKET, event.subject.name)
    if record is None:
        return False
    metadata = record.metadata_dict
    return metadata.get("nonce") == event.nonce and any(
        key not in ("nonce",) for key in metadata
    )


def check_consistency(architecture: str, seed: int = 0) -> tuple[bool, str]:
    """Adversarial EC: reads must never return a mismatched pair."""
    events, md5_by_version = _rewrite_trace(versions=5)
    account, store = _build(
        architecture,
        seed,
        consistency=ConsistencyConfig.eventual(window=4.0, immediate_fraction=0.3),
    )
    mismatches = 0
    retries = 0
    unresolved = 0
    for event in events:
        store.store(event)
        if isinstance(store, S3SimpleDBSQS):
            store.pump()  # reads see only committed state
        try:
            result = store.read(event.subject.name)
        except ReadCorrectnessViolation:
            unresolved += 1  # never converged — but nothing wrong returned
            continue
        retries += result.retries
        expected_md5 = md5_by_version.get(result.subject.version)
        data_md5 = result.data.md5() if result.data is not None else None
        if expected_md5 is None or data_md5 != expected_md5:
            mismatches += 1
    detail = (
        f"{len(events)} rewrites, {retries} consistency retries, "
        f"{unresolved} unresolved reads, {mismatches} mismatched pairs returned"
    )
    return mismatches == 0, detail


def check_causal_ordering(architecture: str, seed: int = 0) -> tuple[bool, str]:
    """Crash between stores of a chain; visible provenance must be closed."""
    trace = _chain_trace(4)
    oracle = AncestryWalker(
        bundle for event in trace for bundle in event.all_bundles()
    )
    violations = []
    for crash_after in range(len(trace)):
        plan = FaultPlan()
        account, store = _build(architecture, seed + crash_after, faults=plan)
        store.provision()
        for index, event in enumerate(trace):
            if index == crash_after:
                # The client host dies between two closes.
                break
            store.store(event)
        _recover(store, account)
        visible = _visible_provenance(account, store, trace)
        if not oracle.is_causally_closed(visible):
            violations.append(f"crash before event {crash_after}")
    detail = f"{len(trace)} crash boundaries, {len(violations)} closure violations"
    return not violations, detail


def _visible_provenance(
    account: AWSAccount, store: ProvenanceCloudStore, trace: list[FlushEvent]
) -> set[ObjectRef]:
    if isinstance(store, S3SimpleDB):
        names = account.simpledb.authoritative_item_names(PROV_DOMAIN)
        return {ObjectRef.from_item_name(name) for name in names}
    visible: set[ObjectRef] = set()
    for event in trace:
        record = account.s3.authoritative_record(DATA_BUCKET, event.subject.name)
        if record is None or record.metadata_dict.get("nonce") != event.nonce:
            continue
        visible.add(event.subject)
        visible.update(ancestor.subject for ancestor in event.ancestors)
    return visible


def check_efficient_query(architecture: str, seed: int = 0) -> tuple[bool, str]:
    """Q2 must cost far fewer operations than the repository has objects."""
    trace = _blast_trace(n_queries=10)
    account, store = _build(
        architecture, seed, consistency=ConsistencyConfig.strong()
    )
    store.store_trace(trace)
    if isinstance(store, S3SimpleDBSQS):
        store.pump()
    account.quiesce()
    n_objects = len(trace)

    # Imported here, not at module top: repro.core.__init__ pulls this
    # module in, so a top-level engine import would make the whole
    # repro.core package unimportable from within repro.query.
    from repro.query.engine import S3ScanEngine, SimpleDBEngine

    if architecture == "s3":
        engine = S3ScanEngine(account)
    else:
        # Same pinned router as the store (_build): query where it wrote.
        engine = SimpleDBEngine(account, router=store.router)
    measurement = engine.q2_outputs_of("blast")

    # Correctness first: an efficient wrong answer is worthless.
    oracle = AncestryWalker(
        bundle for event in trace for bundle in event.all_bundles()
    )
    expected = oracle.outputs_of("blast")
    correct = set(measurement.refs) == expected
    efficient = correct and measurement.operations < n_objects / 2
    detail = (
        f"{measurement.operations} ops for Q2 over {n_objects} objects "
        f"({measurement.result_count} results, correct={correct})"
    )
    return efficient, detail


# ---------------------------------------------------------------------------
# The full table
# ---------------------------------------------------------------------------

def evaluate_architecture(architecture: str, seed: int = 0) -> PropertyReport:
    """Measure one Table 1 row."""
    if architecture not in _FACTORIES:
        raise ValueError(f"unknown architecture {architecture!r}")
    atomicity, atomicity_detail = check_atomicity(architecture, seed)
    consistency, consistency_detail = check_consistency(architecture, seed)
    causal, causal_detail = check_causal_ordering(architecture, seed)
    query, query_detail = check_efficient_query(architecture, seed)
    return PropertyReport(
        architecture=architecture,
        atomicity=atomicity,
        consistency=consistency,
        causal_ordering=causal,
        efficient_query=query,
        details={
            "atomicity": atomicity_detail,
            "consistency": consistency_detail,
            "causal_ordering": causal_detail,
            "efficient_query": query_detail,
        },
    )


def evaluate_all(seed: int = 0) -> list[PropertyReport]:
    """Measure the whole of Table 1."""
    return [evaluate_architecture(name, seed) for name in _FACTORIES]
