"""Shared machinery for the three provenance-aware cloud architectures.

Each architecture is a :class:`ProvenanceCloudStore`: it accepts PASS
flush events (``store``), serves consistent reads of data + provenance
(``read``), and exposes enough structure for the property checkers and
the Figure 1–3 diagram renderer.

Common conventions (§4):

* file data lives in the S3 bucket :data:`DATA_BUCKET` under the file's
  path, overwritten in place as versions advance (each PASS file maps to
  an S3 object);
* spilled >1 KB record values live under ``.pass/overflow/`` in the same
  bucket, keyed by object version (so they are never overwritten by a
  later version);
* provenance-in-SimpleDB architectures use the domain
  :data:`PROV_DOMAIN` with one item per object version — or, when a
  :class:`~repro.sharding.ShardRouter` with ``shards > 1`` is supplied,
  N domains with items routed by consistent hash of the object's path
  (every store carries a router; the default ``shards=1`` router
  degenerates to :data:`PROV_DOMAIN` and is byte-identical to the
  paper's deployment);
* reads go through a :class:`RetryPolicy` — under eventual consistency a
  correct client must be prepared to re-issue requests until data and
  provenance agree (§4.2's "reissue the query ... until we get
  consistent provenance and data").

Shard routing protocol and its caveats: every store holds a
:class:`~repro.migration.RouterHandle` (the routing-epoch indirection)
rather than a bare router — writes follow the handle's *write plan*
(the owning shard store; during a live migration possibly a mirrored
second site or a WAL capture), reads for a known path are single-site
(the source layout until that shard cuts over), and domain-wide
operations (orphan recovery, Q2/Q3) scatter across the handle's query
sites — all current stores, plus cut-over target stores mid-migration —
and gather, with no cross-shard snapshot: each shard answers at its own
replica time, so the usual eventual-consistency retry discipline
applies per shard. Each shard's store
lives on the backend its router placement names (SimpleDB or the
DynamoDB-style service) and every store access goes through the
:mod:`repro.aws.backend` protocol, so the architecture protocols are
backend-agnostic; the snapshot-isolation gap above applies *per
backend* too — a mixed placement reads each store at that service's own
replica time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.aws.account import AWSAccount
from repro.aws.faults import NO_FAULTS, FaultPlan
from repro.blob import Blob
from repro.errors import (
    BucketAlreadyExists,
    NoSuchKey,
    ReadCorrectnessViolation,
    ServiceUnavailable,
)
from repro.migration.handle import RouterHandle, Site, as_handle, fresh_handle
from repro.passlib.records import FlushEvent, ObjectRef, ProvenanceBundle
from repro.sharding import DEFAULT_BASE_DOMAIN, ShardRouter

DATA_BUCKET = "pass-data"
PROV_DOMAIN = DEFAULT_BASE_DOMAIN
TEMP_PREFIX = ".pass/tmp/"


@dataclass(frozen=True)
class ReadResult:
    """A read that satisfied the architecture's correctness protocol.

    ``data`` is ``None`` when only provenance survives for the requested
    version (S3 keeps one object per file, so superseded versions keep
    their provenance but not their bytes). ``retries`` counts how many
    extra round trips eventual consistency cost this read.
    """

    subject: ObjectRef
    data: Blob | None
    bundle: ProvenanceBundle
    consistent: bool
    retries: int = 0


@dataclass(frozen=True)
class RetryPolicy:
    """How a client rides out eventual consistency on the read path.

    ``attempts`` bounds the re-issue loop; ``wait`` (if given) runs
    between attempts — in simulation it typically advances the simulated
    clock, giving replicas a chance to converge, exactly like a real
    client sleeping between retries.
    """

    attempts: int = 8
    wait: Callable[[], None] | None = None

    def run(self, action: Callable[[], "ReadResult"]) -> "ReadResult":
        """Run ``action`` until it stops raising retryable errors."""
        failures: list[str] = []
        for attempt in range(self.attempts):
            try:
                result = action()
            except (NoSuchKey, ServiceUnavailable, _InconsistentRead) as exc:
                failures.append(f"attempt {attempt + 1}: {exc}")
                if self.wait is not None:
                    self.wait()
                continue
            if attempt:
                return ReadResult(
                    subject=result.subject,
                    data=result.data,
                    bundle=result.bundle,
                    consistent=result.consistent,
                    retries=attempt,
                )
            return result
        raise ReadCorrectnessViolation(
            "read did not converge after "
            f"{self.attempts} attempts: {'; '.join(failures[-3:])}"
        )


class _InconsistentRead(Exception):
    """Internal: data/provenance mismatch detected; retry may fix it."""


def call_with_retries(fn, *args, attempts: int = 4, **kwargs):
    """Issue a service request, riding out transient 503s.

    AWS SDK behaviour: ``ServiceUnavailable`` is raised *before* the
    service mutates state, so immediately re-issuing the request is
    always safe. Bounded attempts — a persistently failing service
    surfaces the error to the caller (whose crash the WAL architecture
    then absorbs).
    """
    for attempt in range(attempts):
        try:
            return fn(*args, **kwargs)
        except ServiceUnavailable:
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class Component:
    """A box in the architecture diagram (Figures 1–3)."""

    name: str
    role: str


@dataclass(frozen=True)
class Flow:
    """An arrow in the architecture diagram."""

    source: str
    target: str
    label: str


class ProvenanceCloudStore:
    """Abstract base for the three architectures."""

    #: Paper name, e.g. ``"s3+simpledb"``.
    name: str = "abstract"

    def __init__(self, account: AWSAccount, faults: FaultPlan = NO_FAULTS,
                 retry: RetryPolicy | None = None, shards: int = 1,
                 router: ShardRouter | RouterHandle | None = None):
        self.account = account
        self.faults = faults
        self.retry = retry or RetryPolicy()
        #: Shared routing-epoch indirection over the provenance shard
        #: layout. ``shards=1`` (the default) is the paper's single
        #: :data:`PROV_DOMAIN` deployment; passing an existing
        #: :class:`RouterHandle` (what :class:`~repro.fleet.ClientFleet`
        #: does) makes every consumer observe the same epoch — and the
        #: same live migration — simultaneously.
        self.routing = as_handle(router) if router is not None else fresh_handle(shards)
        self.stores_completed = 0
        self._provisioned = False

    @property
    def router(self) -> ShardRouter:
        """The settled shard layout (the source during a live migration).

        Kept for introspection call sites and operational scripts; the
        store protocols themselves route through :attr:`routing` so a
        migration can redirect them mid-flight.
        """
        return self.routing.current

    # -- provisioning ----------------------------------------------------

    def provision(self) -> None:
        """Create buckets/domains/queues; idempotent."""
        if self._provisioned:
            return
        self._do_provision()
        self._provisioned = True

    def _do_provision(self) -> None:
        raise NotImplementedError

    def _ensure_bucket(self, name: str) -> None:
        """CreateBucket, tolerating a bucket we already own.

        Several clients share the account's data bucket (the usage model
        has many clients writing different objects), so provisioning must
        be idempotent across clients.
        """
        try:
            self.account.s3.create_bucket(name)
        except BucketAlreadyExists:
            pass

    # -- the store protocol ------------------------------------------------

    def store(self, event: FlushEvent) -> None:
        """Persist one flush event per this architecture's §4 protocol."""
        self.provision()
        self._do_store(event)
        self.stores_completed += 1

    def _do_store(self, event: FlushEvent) -> None:
        raise NotImplementedError

    def store_trace(self, events: Iterable[FlushEvent]) -> int:
        """Store a whole trace in causal order; returns events stored."""
        count = 0
        for event in events:
            self.store(event)
            count += 1
        return count

    # -- the read protocol ------------------------------------------------------

    def read(self, name: str, version: int | None = None) -> ReadResult:
        """Read data + provenance with this architecture's guarantees."""
        self.provision()
        return self.retry.run(lambda: self._do_read(name, version))

    def _do_read(self, name: str, version: int | None) -> ReadResult:
        raise NotImplementedError

    def provenance(self, ref: ObjectRef) -> ProvenanceBundle:
        """Fetch the provenance bundle of one object version."""
        return self.read(ref.name, ref.version).bundle

    # -- introspection -----------------------------------------------------------

    def components(self) -> list[Component]:
        """Diagram boxes (see Figures 1–3)."""
        raise NotImplementedError

    def flows(self) -> list[Flow]:
        """Diagram arrows (see Figures 1–3)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(stores={self.stores_completed})"


def backend_for_site(account: AWSAccount, site: Site):
    """The backend adapter hosting one routed site."""
    return account.provenance_backends()[site.kind]


def put_provenance_item(
    account: AWSAccount,
    routing: RouterHandle | ShardRouter,
    item_name: str,
    attributes: Iterable[tuple[str, str]],
) -> None:
    """Store one provenance item per the handle's current write plan.

    The single implementation of §4.2 step 3 / §4.3 step 2(c): both the
    A2 client path and the A3 commit daemon must route, batch, and place
    identically, or a sharded deployment's two write paths diverge. The
    backend handles its own write shape — SimpleDB batches ≤100
    attributes per PutAttributes call, the DynamoDB-style store merges
    one string-set UpdateItem — and both are idempotent set-merges.

    During a live migration the plan may name a second site (the
    double-write window: the write is mirrored to the target layout,
    its spend captured in a scoped meter context and attributed to the
    migration's overhead, never to the client's own bill analysis) or
    ask for WAL capture (the copy phase: the bulk copy may already have
    passed this item, so the write is queued for catch-up replay).

    Being the single choke point also makes it the write-through
    invalidation hook: when the account runs the read-cache tier, the
    item's cached entry is dropped *after* the write lands on every
    planned site — covering the A2 client, the A3 commit daemon, the
    coalescer, and migration double-writes alike.
    """
    routing = as_handle(routing)
    plan = routing.write_plan(item_name)
    attrs = list(attributes)
    primary, *mirrors = plan.sites
    backend_for_site(account, primary).put_provenance_item(
        primary.domain, item_name, attrs
    )
    migration = routing.migration
    for site in mirrors:
        with account.meter.scoped() as scope:
            backend_for_site(account, site).put_provenance_item(
                site.domain, item_name, attrs
            )
        if migration is not None:
            migration.note_double_write(site, scope.usage())
    if plan.capture and migration is not None:
        migration.capture_write(item_name, attrs)
    if account.read_cache is not None:
        account.read_cache.invalidate(item_name)


def put_provenance_items(
    account: AWSAccount,
    routing: RouterHandle | ShardRouter,
    items: Iterable[tuple[str, Iterable[tuple[str, str]]]],
) -> None:
    """Store many provenance items through the batch write path.

    The group-commit counterpart of :func:`put_provenance_item`: each
    item is routed through the *same* write plan it would get alone
    (shard placement, migration double-writes, and WAL capture are all
    per-item decisions), then the per-site groups go to each backend's
    batch API — so a flush of N items to one shard costs one-ish round
    trips instead of N, while a flush spanning shards, backends, or a
    migration window degrades gracefully into one batch per site.

    Ordering: primaries land site-by-site in first-appearance order,
    with items in caller order within each site — the same per-item,
    per-site order the single-item path produces, which is all the
    same-object ordering argument needs (one object's versions always
    hash to one site). Mirror batches run after all primaries, each
    inside its own scoped meter so the migration's double-write
    accounting stays attributed per site.
    """
    routing = as_handle(routing)
    migration = routing.migration
    primaries: dict[tuple[str, str], tuple[Site, list]] = {}
    mirrors: dict[tuple[str, str], tuple[Site, list]] = {}
    captures: list[tuple[str, list[tuple[str, str]]]] = []
    written: list[str] = []
    for item_name, attributes in items:
        attrs = list(attributes)
        plan = routing.write_plan(item_name)
        primary, *rest = plan.sites
        primaries.setdefault(primary.key, (primary, []))[1].append(
            (item_name, attrs)
        )
        written.append(item_name)
        for site in rest:
            mirrors.setdefault(site.key, (site, []))[1].append((item_name, attrs))
        if plan.capture and migration is not None:
            captures.append((item_name, attrs))
    for site, group in primaries.values():
        backend_for_site(account, site).put_provenance_items(site.domain, group)
    for site, group in mirrors.values():
        with account.meter.scoped() as scope:
            backend_for_site(account, site).put_provenance_items(site.domain, group)
        if migration is not None:
            migration.note_double_write(site, scope.usage())
    for item_name, attrs in captures:
        migration.capture_write(item_name, attrs)
    if account.read_cache is not None:
        account.read_cache.invalidate_many(written)


def data_key(name: str) -> str:
    """S3 key holding a file's current data (PASS file ↔ S3 object)."""
    return name


def temp_key(txn_id: str, name: str) -> str:
    """S3 key for a WAL transaction's temporary copy of a file."""
    return f"{TEMP_PREFIX}{txn_id}/{name}"
