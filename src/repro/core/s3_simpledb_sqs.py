"""Architecture A3 — S3 + SimpleDB + SQS (paper §4.3, Figure 3).

Identical to A2 at rest — data in S3, provenance items in SimpleDB,
MD5‖nonce consistency — but the *store path* goes through a per-client
SQS queue used as a write-ahead log, restoring the atomicity A2 lost
(the technique is inspired by Brantner et al.'s "Building a database on
S3", SIGMOD '08):

* **log phase** (the client, on file close): open a transaction; stage
  the data as a temporary S3 object (messages max out at 8 KB); log the
  begin record (with the transaction's record count), the data pointer
  record, the provenance records in ≤8 KB chunks (md5‖nonce included),
  and finally the commit record;
* **commit phase** (the :class:`~repro.core.daemons.CommitDaemon`):
  triggered by the queue's approximate length; reassembles transactions
  and pushes committed ones to S3/SimpleDB idempotently.

A client crash *anywhere* in the log phase leaves an uncommitted
transaction the daemon ignores and retention reaps — no orphan
provenance, no orphan data, hence the full row of check marks in
Table 1. The cost is the extra round trip through SQS: every byte of
provenance is stored once in SQS and read back once (the ``2 × S_SQS``
term in Table 2) and every object costs a temporary PUT plus a COPY.
"""

from __future__ import annotations

import itertools

#: Distinguishes client incarnations: a restarted client must not reuse
#: transaction ids, or its fresh records would merge with a dead
#: incarnation's leftovers on the queue.
_EPOCHS = itertools.count(1)

from repro.aws.account import AWSAccount
from repro.aws.faults import NO_FAULTS, FaultPlan
from repro.core.base import (
    Component,
    DATA_BUCKET,
    Flow,
    RetryPolicy,
    call_with_retries,
)
from repro.core.daemons import CleanerDaemon, CommitDaemon
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.wal import build_wal_bundle
from repro.passlib.records import FlushEvent
from repro.units import SQS_MAX_BATCH_ENTRIES


class S3SimpleDBSQS(S3SimpleDB):
    """A2 plus an SQS write-ahead log, commit daemon, and cleaner."""

    name = "s3+simpledb+sqs"

    def __init__(
        self,
        account: AWSAccount,
        faults: FaultPlan = NO_FAULTS,
        retry: RetryPolicy | None = None,
        client_id: str = "client-0",
        commit_threshold: int = 10,
        daemon_faults: FaultPlan = NO_FAULTS,
        shards: int = 1,
        router=None,
        write_batch: int | None = None,
    ):
        super().__init__(
            account, faults, retry, shards=shards, router=router,
            write_batch=write_batch,
        )
        self.client_id = client_id
        self.epoch = next(_EPOCHS)
        self.queue_url: str | None = None
        self._txn_counter = itertools.count(1)
        self._commit_threshold = commit_threshold
        self._daemon_faults = daemon_faults
        self._commit_daemon: CommitDaemon | None = None
        self._cleaner: CleanerDaemon | None = None

    def _do_provision(self) -> None:
        super()._do_provision()
        self.queue_url = self.account.sqs.create_queue(f"wal-{self.client_id}")

    # -- daemons ------------------------------------------------------------

    @property
    def commit_daemon(self) -> CommitDaemon:
        """The commit daemon bound to this client's WAL queue."""
        self.provision()
        if self._commit_daemon is None:
            self._commit_daemon = CommitDaemon(
                self.account,
                self.queue_url,
                threshold=self._commit_threshold,
                faults=self._daemon_faults,
                router=self.routing,
                write_batch=self.coalescer.batch_size,
            )
        return self._commit_daemon

    @property
    def cleaner_daemon(self) -> CleanerDaemon:
        self.provision()
        if self._cleaner is None:
            self._cleaner = CleanerDaemon(self.account)
        return self._cleaner

    def restart_commit_daemon(self, faults: FaultPlan = NO_FAULTS) -> CommitDaemon:
        """Model a daemon crash: a fresh instance with no in-memory state."""
        self.provision()
        self._commit_daemon = CommitDaemon(
            self.account,
            self.queue_url,
            threshold=self._commit_threshold,
            faults=faults,
            router=self.routing,
            write_batch=self.coalescer.batch_size,
        )
        return self._commit_daemon

    def pump(self, force: bool = True) -> int:
        """Run the commit daemon until the WAL drains; returns applies."""
        daemon = self.commit_daemon
        if force:
            return daemon.drain()
        return daemon.run_once()

    # -- store protocol: the log phase (§4.3 step 1) ---------------------------

    def _do_store(self, event: FlushEvent) -> None:
        faults = self.faults
        faults.check("a3.log.begin")
        # 1(b): allocate the transaction and compute its record count.
        # Ids order lexicographically by (incarnation, sequence): the
        # commit daemon replays the WAL in this order, which keeps
        # successive versions of the same object monotonic.
        txn_id = f"{self.client_id}.e{self.epoch:05d}-{next(self._txn_counter):06d}"
        bundle = build_wal_bundle(event, txn_id)
        call_with_retries(
            self.account.sqs.send_message, self.queue_url, bundle.messages[0]
        )
        faults.check("a3.log.after_begin_record")
        # 1(c): stage the data (and any oversized values) as temp objects.
        for key, content in bundle.temp_puts:
            call_with_retries(self.account.s3.put, DATA_BUCKET, key, content)
            faults.check("a3.log.after_temp_put")
        # 1(c)-1(d): the pointer record, provenance chunks, md5 record.
        # With write_batch > 1 the middle records travel in
        # SendMessageBatch calls (≤10 entries): a crash between calls
        # loses at most one unsent chunk — exactly the exposure of a
        # crash in the per-message loop, since an uncommitted
        # transaction is invisible to the daemon either way. The begin
        # and commit records stay single sends: begin precedes the temp
        # puts, and commit alone seals the transaction.
        middle = bundle.messages[1:-1]
        batch = self.coalescer.batch_size
        if batch > 1 and middle:
            chunk = min(batch, SQS_MAX_BATCH_ENTRIES)
            for start in range(0, len(middle), chunk):
                call_with_retries(
                    self.account.sqs.send_message_batch,
                    self.queue_url,
                    middle[start : start + chunk],
                )
                faults.check("a3.log.after_record")
        else:
            for body in middle:
                call_with_retries(self.account.sqs.send_message, self.queue_url, body)
                faults.check("a3.log.after_record")
        # 1(e): the commit record seals the transaction.
        faults.check("a3.log.before_commit")
        call_with_retries(
            self.account.sqs.send_message, self.queue_url, bundle.messages[-1]
        )
        faults.check("a3.log.done")
        # Opportunistic monitor tick, as the daemon would do on its timer.
        self.commit_daemon.run_once()

    # -- diagram (Figure 3) -----------------------------------------------------------

    def components(self) -> list[Component]:
        return [
            Component("application", "issues read/write/close system calls"),
            Component("pass", "PASS capture layer + local cache"),
            Component("sqs", "Amazon SQS: per-client WAL queue"),
            Component("commit-daemon", "drains WAL, applies transactions"),
            Component("cleaner-daemon", "reaps abandoned temp objects"),
            Component("s3", "Amazon S3: data objects + temp staging"),
            Component("simpledb", "Amazon SimpleDB: provenance items"),
        ]

    def flows(self) -> list[Flow]:
        return [
            Flow("application", "pass", "system calls"),
            Flow("pass", "s3", "PUT temp object"),
            Flow("pass", "sqs", "log records + commit (txn-tagged)"),
            Flow("sqs", "commit-daemon", "ReceiveMessage (sampled)"),
            Flow("commit-daemon", "s3", "COPY temp->real, DELETE temp"),
            Flow("commit-daemon", "simpledb", "PutAttributes provenance"),
            Flow("commit-daemon", "sqs", "DeleteMessage"),
            Flow("cleaner-daemon", "s3", "LIST/DELETE .pass/tmp/ > 4 days"),
            Flow("simpledb", "pass", "Query / QueryWithAttributes"),
            Flow("s3", "pass", "GET data"),
        ]
