"""Architecture A2 — S3 + SimpleDB (paper §4.2, Figure 2).

Data goes to S3; provenance goes to SimpleDB, one item per object
version (item name ``name_vNNNN``), which buys **efficient, indexed
query** — the property A1 lacks. Values above SimpleDB's 1 KB limit
spill to S3 objects referenced from the item.

Consistency is protected by the **MD5 ‖ nonce** record: alongside the
provenance the client stores ``md5 = H(md5(data) ‖ nonce)`` and stamps
the same nonce on the S3 object's metadata. A reader recomputes the
token from the data it got and compares; on mismatch (S3 returned an
older object than SimpleDB's provenance, or vice versa — possible under
eventual consistency) it re-issues the requests until the pair agrees.
The nonce matters because overwriting a file *with identical bytes*
still creates new provenance: without the nonce the MD5 alone could not
distinguish the versions (§4.2).

What A2 cannot give is **atomicity**: provenance is stored (step 3)
before data (step 4), so a crash in between leaves *orphan provenance*
describing an object S3 never received. Recovery is an inelegant scan
of the whole domain (:meth:`S3SimpleDB.recover_orphans`) — the
motivation for A3's write-ahead log.

Protocol on file close (§4.2):

1. read the data cache file and provenance cache file;
2. convert records to attribute-value pairs; spill >1 KB values to S3;
   add the MD5(data ‖ nonce) record;
3. store the item with PutAttributes (≤100 attributes per call, so
   possibly several calls);
4. PUT the object to S3 with the nonce as metadata.
"""

from __future__ import annotations

from repro.aws.account import AWSAccount
from repro.aws.faults import NO_FAULTS, FaultPlan
from repro.core.base import (
    call_with_retries,
    Component,
    DATA_BUCKET,
    Flow,
    ProvenanceCloudStore,
    ReadResult,
    RetryPolicy,
    _InconsistentRead,
    backend_for_site,
    data_key,
)
from repro.core.coalesce import WriteCoalescer
from repro.errors import NoSuchKey, ReadCorrectnessViolation
from repro.passlib.records import (
    VERSION_DIGITS,
    Attr,
    FlushEvent,
    ObjectRef,
    ProvenanceBundle,
    consistency_token,
)
from repro.passlib.serializer import (
    SdbItemPayload,
    bundle_from_item,
    parse_nonce,
    to_simpledb_items,
)


class S3SimpleDB(ProvenanceCloudStore):
    """Data in S3, provenance in SimpleDB, MD5‖nonce consistency check."""

    name = "s3+simpledb"

    def __init__(
        self,
        account: AWSAccount,
        faults: FaultPlan = NO_FAULTS,
        retry: RetryPolicy | None = None,
        shards: int = 1,
        router=None,
        write_batch: int | None = None,
    ):
        super().__init__(account, faults, retry, shards=shards, router=router)
        self.consistency_retries = 0
        self.orphans_removed = 0
        #: Group-commit buffer for step 3. ``write_batch=1`` (default)
        #: bypasses it entirely — byte-identical to the paper's path.
        self.coalescer = WriteCoalescer(account, self.routing, write_batch)

    def _do_provision(self) -> None:
        self._ensure_bucket(DATA_BUCKET)
        self.routing.provision(self.account.provenance_backends())

    # -- store protocol (§4.2) ------------------------------------------------

    def _do_store(self, event: FlushEvent) -> None:
        faults = self.faults
        faults.check("a2.store.begin")
        # Steps 1-2: serialise; the file item carries md5+nonce records.
        payloads = to_simpledb_items(event)
        faults.check("a2.store.serialized")
        for payload in payloads:
            for overflow in payload.overflow:
                call_with_retries(
                    self.account.s3.put, DATA_BUCKET, overflow.key, overflow.value
                )
                faults.check("a2.store.overflow_put")
        # Step 3: provenance first...
        for payload in payloads:
            self._put_item(payload)
            faults.check("a2.store.after_put_attributes")
        # Group commit drains here, *before* the data PUT: coalescing
        # must not let step 4 overtake step 3, or the orphan window
        # would widen from "crash between two calls" to "crash with a
        # full buffer". One event's payloads (file item + transient
        # process items) still share a batch.
        self.coalescer.flush()
        faults.check("a2.store.before_data_put")
        # Step 4: ...then data. A crash between these two calls is the
        # atomicity violation of Table 1.
        call_with_retries(
            self.account.s3.put,
            DATA_BUCKET,
            data_key(event.subject.name),
            event.data,
            metadata={"nonce": event.nonce},
        )
        faults.check("a2.store.done")

    def _put_item(self, payload: SdbItemPayload) -> None:
        """PutAttributes in batches of ≤100 attributes (§4.2 step 3).

        Each item routes to its owning shard domain; batches never span
        shards because an item lives wholly on one shard. With
        ``write_batch>1`` the put is buffered and lands in the pre-data
        flush as part of a per-shard BatchPutAttributes/BatchWriteItem.
        """
        self.coalescer.put(payload.item_name, payload.attributes)

    # -- read protocol -------------------------------------------------------------

    def _do_read(self, name: str, version: int | None) -> ReadResult:
        if version is None:
            return self._read_current(name)
        return self._read_version(name, version)

    def _read_current(self, name: str) -> ReadResult:
        data = self.account.s3.get(DATA_BUCKET, data_key(name))
        nonce = data.metadata.get("nonce")
        if nonce is None:
            raise ReadCorrectnessViolation(f"{name}: S3 object carries no nonce")
        version = parse_nonce(nonce)
        if version is None:
            raise ReadCorrectnessViolation(f"{name}: malformed nonce {nonce!r}")
        subject = ObjectRef(name, version)
        attrs = self._get_provenance_attrs(name, subject.item_name)
        if not attrs:
            # The provenance replica hasn't seen the item (or it was
            # never stored — the orphan-data flavour of an atomicity
            # break).
            self.consistency_retries += 1
            raise _InconsistentRead(f"{subject.item_name}: no provenance visible")
        stored_token = (attrs.get(Attr.MD5) or ("",))[0]
        expected = consistency_token(data.blob.md5(), nonce)
        if stored_token != expected:
            self.consistency_retries += 1
            # The mismatched attrs may have come from (or been filled
            # into) the read cache; drop them so the retry re-reads the
            # backend instead of re-serving the same skewed entry.
            self._uncache(subject.item_name)
            raise _InconsistentRead(
                f"{subject.item_name}: md5 mismatch (data/provenance skew)"
            )
        bundle = self._decode_item(subject.item_name, attrs)
        return ReadResult(subject=subject, data=data.blob, bundle=bundle, consistent=True)

    def _read_version(self, name: str, version: int) -> ReadResult:
        subject = ObjectRef(name, version)
        attrs = self._get_provenance_attrs(name, subject.item_name)
        if not attrs:
            raise _InconsistentRead(f"{subject.item_name}: no provenance visible")
        bundle = self._decode_item(subject.item_name, attrs)
        # Data bytes survive only for the current version.
        data = None
        consistent = True
        try:
            current = self.account.s3.get(DATA_BUCKET, data_key(name))
        except NoSuchKey:
            current = None
        if current is not None and current.metadata.get("nonce") == f"v{version:04d}":
            stored_token = (attrs.get(Attr.MD5) or ("",))[0]
            expected = consistency_token(current.blob.md5(), f"v{version:04d}")
            if stored_token != expected:
                self.consistency_retries += 1
                self._uncache(subject.item_name)
                raise _InconsistentRead(f"{subject.item_name}: md5 mismatch")
            data = current.blob
        return ReadResult(subject=subject, data=data, bundle=bundle, consistent=consistent)

    def _get_provenance_attrs(self, name: str, item_name: str):
        """Point-read one provenance item from its shard's backend.

        SimpleDB shards read a replica via GetAttributes; DynamoDB-style
        shards issue an eventually consistent GetItem — either way the
        read may be stale or empty, which is exactly what the MD5‖nonce
        retry discipline exists to absorb. The site comes from the
        shared routing handle: during a live migration reads stay on
        the source layout until the owning shard cuts over.

        When the read-cache tier is on, the authority is consulted
        first; a miss falls through to the backend and fills the cache,
        fenced against invalidations that land during the read. Empty
        results are never cached — a replica that has not seen the item
        yet must not suppress the next probe.
        """
        cache = self.account.read_cache
        if cache is not None:
            hit, attrs = cache.get_item(item_name)
            if hit:
                return attrs
            fence = cache.fence()
        site = self.routing.read_site(name)
        attrs = backend_for_site(self.account, site).get_item(site.domain, item_name)
        if cache is not None and attrs:
            cache.put_item(item_name, attrs, fence)
        return attrs

    def _uncache(self, item_name: str) -> None:
        """Drop one item's read-cache entry (consistency-retry paths)."""
        if self.account.read_cache is not None:
            self.account.read_cache.invalidate(item_name)

    def _decode_item(self, item_name: str, attrs) -> ProvenanceBundle:
        def fetch_overflow(key: str) -> str:
            return self.account.s3.get(DATA_BUCKET, key).bytes().decode("utf-8")

        return bundle_from_item(item_name, attrs, fetch_overflow)

    def version_history(self, name: str, max_gap: int = 2) -> list[ProvenanceBundle]:
        """Every stored version's provenance, oldest first.

        This is what the SimpleDB architectures add over A1: superseded
        versions keep their provenance items even though S3 holds only
        the current bytes, so the full revision chain of an object can
        be reconstructed. Versions are probed sequentially (they are
        allocated densely); ``max_gap`` consecutive misses end the probe,
        tolerating replicas that have not seen the newest item yet.

        When the owning shard is DynamoDB-placed and declares a fresh
        composite ``(name, nonce)`` range index with an ``ALL``
        projection (spec ``"name/nonce+*"``), the whole chain is served
        by **one paged range Query** instead of one point read per
        version — same bundle list, strictly fewer metered read
        operations (the regression the unit suite pins). Every other
        configuration keeps the probe loop.
        """
        self.provision()
        indexed = self._indexed_version_history(name)
        if indexed is not None:
            return indexed
        history: list[ProvenanceBundle] = []
        version = 1
        misses = 0
        while misses < max_gap:
            subject = ObjectRef(name, version)
            attrs = self._get_provenance_attrs(name, subject.item_name)
            if attrs:
                history.append(self._decode_item(subject.item_name, attrs))
                misses = 0
            else:
                misses += 1
            version += 1
        return history

    def _indexed_version_history(self, name: str) -> list[ProvenanceBundle] | None:
        """The revision chain off a composite ``(name, nonce)`` GSI, or
        None when the probe loop must serve it.

        The index partitions on the NAME record (the file's *basename*)
        and sorts by the zero-padded version nonce, so one hash
        partition's ascending slice is the version order; entries for
        other paths sharing the basename are filtered by item-name
        prefix. Only file items carry a nonce, so the composite index
        is sparse over process items by construction. Entries come
        straight off the index — this path never consults or fills the
        read-cache tier (its entries are whole items already paid for).
        """
        site = self.routing.read_site(name)
        if site.kind != "ddb":
            return None
        backend = backend_for_site(self.account, site)
        spec = backend.composite_index(site.domain, Attr.NAME, Attr.NONCE)
        if spec is None:
            return None
        basename = name.rsplit("/", 1)[-1]
        prefix = f"{name}_v"
        history: list[ProvenanceBundle] = []
        for item_name, attrs in backend.index_range_entries(
            site.domain,
            spec.name,
            basename,
            (">=", f"v{1:0{VERSION_DIGITS}d}"),
        ):
            if not item_name.startswith(prefix):
                continue
            history.append(self._decode_item(item_name, attrs))
        return history

    # -- recovery (the §4.2 "inelegant solution") --------------------------------------

    def recover_orphans(self) -> list[str]:
        """Scan SimpleDB for provenance of data S3 never stored.

        An item is an orphan when it describes a *file* version newer
        than anything S3 holds for that name — the signature of a client
        that crashed between step 3 (provenance) and step 4 (data). The
        scan touches every item in every shard domain, which is exactly
        why the paper calls this recovery inelegant and motivates A3
        (and sharding only multiplies the scan's fan-out). During a
        live migration the scan covers the union of source stores and
        cut-over target stores, and each orphan is deleted from *every*
        site it may occupy — deleting only one copy would resurrect the
        other at cutover.
        """
        self.provision()
        removed = []
        seen: set[str] = set()
        for site in self.routing.query_sites():
            backend = backend_for_site(self.account, site)
            for item_name, attrs in backend.scan_pages(site.domain):
                if Attr.MD5 not in attrs:
                    continue  # transient-object item; no data expected
                if item_name in seen:
                    continue  # already examined via another site's copy
                seen.add(item_name)  # the verdict is per item, not per site
                subject = ObjectRef.from_item_name(item_name)
                if self._is_orphan(subject):
                    for delete_site in self.routing.delete_sites(item_name):
                        backend_for_site(self.account, delete_site).delete_item(
                            delete_site.domain, item_name
                        )
                    self._uncache(item_name)
                    removed.append(item_name)
        self.orphans_removed += len(removed)
        return removed

    def _is_orphan(self, subject: ObjectRef) -> bool:
        try:
            head = self.account.s3.head(DATA_BUCKET, data_key(subject.name))
        except NoSuchKey:
            return True
        version = parse_nonce(head.metadata.get("nonce", "v0000"))
        # A malformed nonce is corruption, not proof the data is older
        # than the item: never garbage-collect provenance on its say-so.
        return version is not None and version < subject.version

    # -- diagram (Figure 2) ---------------------------------------------------------------

    def components(self) -> list[Component]:
        return [
            Component("application", "issues read/write/close system calls"),
            Component("pass", "PASS capture layer + local cache"),
            Component("s3", "Amazon S3: data objects (+ spilled values)"),
            Component("simpledb", "Amazon SimpleDB: provenance items"),
        ]

    def flows(self) -> list[Flow]:
        return [
            Flow("application", "pass", "system calls"),
            Flow("pass", "simpledb", "PutAttributes(provenance + md5//nonce)"),
            Flow("pass", "s3", "PUT(data, nonce) on close"),
            Flow("simpledb", "pass", "Query / QueryWithAttributes"),
            Flow("s3", "pass", "GET data"),
        ]
