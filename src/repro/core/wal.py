"""Write-ahead-log record formats for architecture A3 (paper §4.3).

Each client owns one SQS queue used as a WAL. A file close becomes a
**transaction**: the client logs records tagged with the transaction id,
then a commit record. Record types (JSON bodies, ≤8 KB each):

``begin``
    opens transaction *txn*; carries ``n``, the number of records that
    follow (commit included), so the commit daemon can tell when it has
    assembled the whole transaction.
``data``
    the pointer record for the file's bytes: the data itself was staged
    as a *temporary S3 object* (bodies are limited to 8 KB, and chunking
    a large file through the queue would be "quite inefficient" — §4.3),
    plus the nonce and data digest used for the consistency record.
``prov``
    a ≤8 KB chunk of provenance: one or more (item name, attributes)
    groups destined for SimpleDB. The md5‖nonce consistency attributes
    ride inside the file's item, satisfying §4.3 step 1(d).
``ovfl``
    a spilled >1 KB record value destined for its own S3 object; values
    too large even for a message are staged like data (``ovfl_ptr``).
``commit``
    seals the transaction; the commit daemon ignores transactions that
    never got one (the client crashed mid-log), and SQS's 4-day
    retention garbage-collects their records.

:class:`TransactionAssembler` reconstructs transactions from the
unordered, sampled, at-least-once stream ``ReceiveMessage`` yields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.aws.sqs import ReceivedMessage
from repro.core.base import temp_key
from repro.passlib.records import FlushEvent
from repro.passlib.serializer import SdbItemPayload, to_simpledb_items
from repro.units import SQS_MAX_MESSAGE_SIZE

#: Leave headroom under the 8 KB SQS limit for the JSON envelope.
MESSAGE_BUDGET = SQS_MAX_MESSAGE_SIZE - 256


def _dumps(payload: dict) -> str:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


@dataclass(frozen=True)
class WalBundle:
    """Everything the log phase must do for one flush event."""

    txn_id: str
    #: (key, content) pairs the *client* stages on S3 before logging.
    temp_puts: tuple[tuple[str, object], ...]
    #: Message bodies, in log order; messages[0] is begin, [-1] is commit.
    messages: tuple[str, ...]

    @property
    def record_count(self) -> int:
        """Records after begin (commit included) — the begin ``n`` field."""
        return len(self.messages) - 1


def build_wal_bundle(event: FlushEvent, txn_id: str) -> WalBundle:
    """Serialise a flush event into its WAL transaction."""
    payloads: list[SdbItemPayload] = to_simpledb_items(event)
    temp_data_key = temp_key(txn_id, event.subject.name)
    temp_puts: list[tuple[str, object]] = [(temp_data_key, event.data)]

    records: list[dict] = []
    records.append(
        {
            "t": "data",
            "txn": txn_id,
            "subject": event.subject.encode(),
            "temp": temp_data_key,
            "nonce": event.nonce,
            "md5": event.data.md5(),
            "size": event.data.size,
        }
    )
    for payload in payloads:
        for overflow in payload.overflow:
            body = {
                "t": "ovfl",
                "txn": txn_id,
                "key": overflow.key,
                "value": overflow.value,
            }
            if len(_dumps(body).encode()) <= MESSAGE_BUDGET:
                records.append(body)
            else:
                staged = temp_key(txn_id, overflow.key)
                temp_puts.append((staged, overflow.value))
                records.append(
                    {"t": "ovfl_ptr", "txn": txn_id, "key": overflow.key, "temp": staged}
                )
        records.extend(_chunk_item(txn_id, payload))
    records.append({"t": "commit", "txn": txn_id})

    begin = {"t": "begin", "txn": txn_id, "n": len(records)}
    messages = tuple(_dumps(r) for r in [begin, *records])
    return WalBundle(txn_id=txn_id, temp_puts=tuple(temp_puts), messages=messages)


def _chunk_item(txn_id: str, payload: SdbItemPayload) -> list[dict]:
    """Split one item's attributes into ≤8 KB ``prov`` records (§4.3 1(d))."""
    chunks: list[dict] = []
    current: list[list[str]] = []
    current_size = 0
    base_overhead = len(
        _dumps({"t": "prov", "txn": txn_id, "item": payload.item_name, "attrs": []}).encode()
    )
    for name, value in payload.attributes:
        entry_size = len(_dumps([name, value]).encode()) + 1
        if current and base_overhead + current_size + entry_size > MESSAGE_BUDGET:
            chunks.append(
                {"t": "prov", "txn": txn_id, "item": payload.item_name, "attrs": current}
            )
            current, current_size = [], 0
        current.append([name, value])
        current_size += entry_size
    if current:
        chunks.append(
            {"t": "prov", "txn": txn_id, "item": payload.item_name, "attrs": current}
        )
    return chunks


def parse_record(body: str) -> dict:
    """Decode one WAL message body."""
    record = json.loads(body)
    if "t" not in record or "txn" not in record:
        raise ValueError(f"malformed WAL record: {body[:80]!r}")
    return record


@dataclass
class AssembledTransaction:
    """A transaction as reconstructed by the commit daemon."""

    txn_id: str
    expected_records: int | None = None
    data: dict | None = None
    prov: list[dict] = field(default_factory=list)
    overflow: list[dict] = field(default_factory=list)
    committed: bool = False
    #: Receipt handles of every message seen for this transaction.
    handles: list[str] = field(default_factory=list)
    #: Message ids already folded in (dedup under at-least-once delivery).
    seen_message_ids: set[str] = field(default_factory=set)

    @property
    def records_seen(self) -> int:
        return (
            (1 if self.data is not None else 0)
            + len(self.prov)
            + len(self.overflow)
            + (1 if self.committed else 0)
        )

    @property
    def is_complete(self) -> bool:
        """All records present: begin seen, commit seen, count matches."""
        return (
            self.committed
            and self.expected_records is not None
            and self.records_seen >= self.expected_records
        )

    def items(self) -> list[tuple[str, list[tuple[str, str]]]]:
        """Reassemble (item name, attributes) groups from prov chunks."""
        grouped: dict[str, list[tuple[str, str]]] = {}
        for record in self.prov:
            grouped.setdefault(record["item"], []).extend(
                (name, value) for name, value in record["attrs"]
            )
        return sorted(grouped.items())


class TransactionAssembler:
    """Folds received WAL messages into transactions.

    Tolerates everything SQS throws at it: duplicates (at-least-once),
    arbitrary order (begin may arrive last), and partial visibility
    (sampling) — completeness is judged only by the begin record's count.
    """

    def __init__(self) -> None:
        self._txns: dict[str, AssembledTransaction] = {}

    def add(self, message: ReceivedMessage) -> None:
        record = parse_record(message.body)
        txn = self._txns.setdefault(
            record["txn"], AssembledTransaction(txn_id=record["txn"])
        )
        txn.handles.append(message.receipt_handle)
        if message.message_id in txn.seen_message_ids:
            return  # duplicate delivery
        txn.seen_message_ids.add(message.message_id)
        kind = record["t"]
        if kind == "begin":
            txn.expected_records = record["n"]
        elif kind == "data":
            txn.data = record
        elif kind == "prov":
            txn.prov.append(record)
        elif kind in ("ovfl", "ovfl_ptr"):
            txn.overflow.append(record)
        elif kind == "commit":
            txn.committed = True
        else:
            raise ValueError(f"unknown WAL record type {kind!r}")

    def complete(self) -> list[AssembledTransaction]:
        return sorted(
            (t for t in self._txns.values() if t.is_complete),
            key=lambda t: t.txn_id,
        )

    def pending_commits(self) -> list[AssembledTransaction]:
        """Committed but still missing records (keep receiving — §4.3 2(a))."""
        return [
            t for t in self._txns.values() if t.committed and not t.is_complete
        ]

    def uncommitted(self) -> list[AssembledTransaction]:
        """No commit record: the client crashed mid-log; ignore (§4.3)."""
        return [t for t in self._txns.values() if not t.committed]

    def all_transactions(self) -> list[AssembledTransaction]:
        """Every transaction seen this phase, in id (i.e. log) order."""
        return sorted(self._txns.values(), key=lambda t: t.txn_id)

    def forget(self, txn_id: str) -> None:
        self._txns.pop(txn_id, None)

    def __len__(self) -> int:
        return len(self._txns)


def epoch_of(txn_id: str) -> str:
    """The client-incarnation prefix of a transaction id.

    Ids look like ``client-0.e00002-000017``; everything before the last
    ``-`` identifies the incarnation that logged the transaction.
    """
    return txn_id.rsplit("-", 1)[0]
