"""The paper's contribution: three provenance-aware cloud architectures.

* :class:`~repro.core.s3_standalone.S3Standalone` — §4.1, provenance in
  S3 object metadata (atomic single PUT; inefficient query);
* :class:`~repro.core.s3_simpledb.S3SimpleDB` — §4.2, data in S3,
  provenance in SimpleDB with the MD5‖nonce consistency check (efficient
  query; atomicity violated on ill-timed crashes);
* :class:`~repro.core.s3_simpledb_sqs.S3SimpleDBSQS` — §4.3, same plus a
  per-client SQS write-ahead log, commit daemon, and cleaner daemon
  (all properties hold).

:mod:`repro.core.properties` turns Table 1 into executable checks.
"""

from repro.core.base import ProvenanceCloudStore, ReadResult, RetryPolicy
from repro.core.daemons import CleanerDaemon, CommitDaemon
from repro.core.properties import PropertyReport, evaluate_architecture
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.core.s3_standalone import S3Standalone

ARCHITECTURES = ("s3", "s3+simpledb", "s3+simpledb+sqs")


def make_architecture(name, account, **kwargs):
    """Factory: build an architecture by its paper name.

    ``name`` is one of ``'s3'``, ``'s3+simpledb'``, ``'s3+simpledb+sqs'``.
    """
    factories = {
        "s3": S3Standalone,
        "s3+simpledb": S3SimpleDB,
        "s3+simpledb+sqs": S3SimpleDBSQS,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; expected one of {ARCHITECTURES}"
        ) from None
    return factory(account, **kwargs)


__all__ = [
    "ProvenanceCloudStore",
    "ReadResult",
    "RetryPolicy",
    "S3Standalone",
    "S3SimpleDB",
    "S3SimpleDBSQS",
    "CommitDaemon",
    "CleanerDaemon",
    "PropertyReport",
    "evaluate_architecture",
    "ARCHITECTURES",
    "make_architecture",
]
