"""Exception hierarchy for the provenance-aware cloud reproduction.

Every error raised by the simulated AWS services, the PASS capture layer,
and the provenance architectures derives from :class:`ReproError` so callers
can catch library errors without swallowing programming mistakes.

The AWS-side errors mirror the failure classes the paper's protocols must
tolerate: request rejections (limits exceeded, missing entities), transient
service failures (which clients retry), and injected client crashes (which
the write-ahead-log protocol of architecture A3 recovers from).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# AWS service-side errors
# ---------------------------------------------------------------------------

class AWSError(ReproError):
    """Base class for errors returned by a simulated AWS service."""

    #: Symbolic error code, mirroring AWS error-code strings.
    code = "InternalError"


class NoSuchBucket(AWSError):
    """An S3 request named a bucket that does not exist."""

    code = "NoSuchBucket"


class NoSuchKey(AWSError):
    """An S3 GET/HEAD/COPY/DELETE named an object that does not exist."""

    code = "NoSuchKey"


class BucketAlreadyExists(AWSError):
    """An S3 CreateBucket named a bucket that already exists."""

    code = "BucketAlreadyExists"


class EntityTooLarge(AWSError):
    """An S3 PUT exceeded the 5 GB object size limit."""

    code = "EntityTooLarge"


class EntityTooSmall(AWSError):
    """An S3 PUT supplied an empty object (the minimum is one byte)."""

    code = "EntityTooSmall"


class MetadataTooLarge(AWSError):
    """An S3 PUT supplied more than 2 KB of user metadata."""

    code = "MetadataTooLarge"


class InvalidRange(AWSError):
    """A ranged S3 GET requested bytes outside the object."""

    code = "InvalidRange"


class NoSuchDomain(AWSError):
    """A SimpleDB request named a domain that does not exist."""

    code = "NoSuchDomain"


class NumberItemAttributesExceeded(AWSError):
    """A SimpleDB item would exceed 256 attribute-value pairs."""

    code = "NumberItemAttributesExceeded"


class NumberSubmittedAttributesExceeded(AWSError):
    """A single PutAttributes call supplied more than 100 attributes."""

    code = "NumberSubmittedAttributesExceeded"


class NumberSubmittedItemsExceeded(AWSError):
    """A BatchPutAttributes call supplied more than 25 items."""

    code = "NumberSubmittedItemsExceeded"


class AttributeValueTooLong(AWSError):
    """A SimpleDB attribute name or value exceeded 1 KB."""

    code = "InvalidParameterValue"


class InvalidQueryExpression(AWSError):
    """A SimpleDB query expression failed to parse."""

    code = "InvalidQueryExpression"


class InvalidNextToken(AWSError):
    """A SimpleDB pagination token was stale or malformed."""

    code = "InvalidNextToken"


class QueryTimeout(AWSError):
    """A SimpleDB query exceeded the service's processing budget."""

    code = "RequestTimeout"


class NoSuchTable(AWSError):
    """A DynamoDB-style request named a table that does not exist."""

    code = "ResourceNotFoundException"


class ItemSizeLimitExceeded(AWSError):
    """A DynamoDB-style item would exceed the 400 KB item size limit."""

    code = "ValidationException"


class NoSuchIndex(AWSError):
    """A DynamoDB-style Query named a secondary index the table lacks."""

    code = "ResourceNotFoundException"


class ProvisionedThroughputExceeded(AWSError):
    """A DynamoDB-style request was throttled: the table's provisioned
    read or write capacity is exhausted for the current second. Clients
    back off (advancing the simulated clock) and retry."""

    code = "ProvisionedThroughputExceededException"


class NoSuchQueue(AWSError):
    """An SQS request named a queue that does not exist."""

    code = "AWS.SimpleQueueService.NonExistentQueue"


class QueueNameExists(AWSError):
    """An SQS CreateQueue reused a name with different attributes."""

    code = "QueueAlreadyExists"


class MessageTooLong(AWSError):
    """An SQS SendMessage exceeded the 8 KB message size limit."""

    code = "MessageTooLong"


class InvalidMessageContents(AWSError):
    """An SQS message contained characters outside the allowed set."""

    code = "InvalidMessageContents"


class ReceiptHandleInvalid(AWSError):
    """An SQS DeleteMessage used an expired or unknown receipt handle."""

    code = "ReceiptHandleIsInvalid"


class TooManyEntriesInBatchRequest(AWSError):
    """A batch request exceeded the service's per-call entry cap (10 for
    SQS Send/DeleteMessageBatch, 25 for DynamoDB-style BatchWriteItem)."""

    code = "AWS.SimpleQueueService.TooManyEntriesInBatchRequest"


class EmptyBatchRequest(AWSError):
    """A batch request carried no entries."""

    code = "AWS.SimpleQueueService.EmptyBatchRequest"


class ServiceUnavailable(AWSError):
    """Transient failure injected by the fault plan; callers may retry."""

    code = "ServiceUnavailable"


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class ClientCrash(ReproError):
    """Raised by a fault plan to simulate the client process dying.

    The exception deliberately does *not* derive from :class:`AWSError`:
    service state mutated before the crash point remains mutated, exactly
    as if a real client host had lost power mid-protocol.
    """

    def __init__(self, point: str):
        super().__init__(f"client crashed at fault point {point!r}")
        self.point = point


# ---------------------------------------------------------------------------
# PASS capture layer
# ---------------------------------------------------------------------------

class PassError(ReproError):
    """Base class for PASS capture-layer errors."""


class UnknownObject(PassError):
    """An operation referenced a pnode that was never allocated."""


class ObjectClosed(PassError):
    """A syscall was issued against a closed file handle or exited process."""


class CacheMiss(PassError):
    """The local cache directory has no entry for the requested file."""


# ---------------------------------------------------------------------------
# Workload trace files
# ---------------------------------------------------------------------------

class TraceFormatError(ReproError):
    """A provenance trace file failed validation and was rejected whole.

    Raised by the JSONL trace codec for malformed lines, unsupported
    format versions, and truncated files. Loading is all-or-nothing: a
    trace that raises this error yields no events, so a replay can never
    apply a prefix of a corrupt capture.
    """

    def __init__(self, message: str, line: int | None = None):
        where = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{where}")
        self.line = line


# ---------------------------------------------------------------------------
# Provenance architectures
# ---------------------------------------------------------------------------

class ArchitectureError(ReproError):
    """Base class for provenance-architecture protocol errors."""


class ReadCorrectnessViolation(ArchitectureError):
    """A read observed data without matching provenance (or vice versa).

    Architecture A2 raises this only when its bounded consistency-retry
    loop is exhausted; the property checkers catch it to fill Table 1.
    """


class OrphanProvenance(ArchitectureError):
    """Provenance exists for an object whose data was never stored."""


class TransactionAborted(ArchitectureError):
    """A WAL transaction was found incomplete and will never commit."""
