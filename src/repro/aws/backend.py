"""The ProvenanceBackend protocol: one shard store, two services.

Extracted from the SimpleDB-only store path so the shard router can
place each provenance shard on a *named backend* — the paper's single
SimpleDB domain (§4.2) or the DynamoDB-style service
(:mod:`repro.aws.dynamo`). Every writer (the A2 client path, the A3
commit daemon), the rebalancer, and all three query classes go through
this protocol, so adding a backend never forks the store protocol
logic.

Two implementations:

* :class:`SimpleDBBackend` — a zero-cost adapter over
  :class:`~repro.aws.simpledb.SimpleDBService`. It issues **exactly**
  the request sequences the pre-protocol code issued (same operations,
  same batching, same pagination), so an all-SimpleDB placement is
  byte-identical on the billing meter to the historical engine — the
  invariant ``benchmarks/check_baselines.py`` and the backend property
  suite pin.
* :class:`DynamoBackend` — maps the same item model onto the
  DynamoDB-style service: ``put`` becomes one idempotent string-set
  ``UpdateItem`` (no 100-attribute batching — DynamoDB has no such
  limit), point reads become ``GetItem`` (eventually consistent by
  default, like SimpleDB replica reads; ``consistent_reads=True`` buys
  strong reads at double the read units), and — because the service has
  no query language — every query phase becomes a paged ``Scan`` with
  the *same* compiled predicate applied client-side, so result sets are
  identical across backends while the metered cost differs honestly.
  Throttled requests back off by advancing the simulated clock.

Backend *kinds* are the short names placement maps use: ``"sdb"`` and
``"ddb"`` (see :func:`repro.sharding.parse_placement`).
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.aws.dynamo import DynamoDBService
from repro.aws.sdb_query import parse_query, run_query
from repro.aws.simpledb import Attribute, SimpleDBService
from repro.errors import ProvisionedThroughputExceeded, ServiceUnavailable
from repro.units import SDB_MAX_ATTRS_PER_CALL

#: Backend kind names, as used in placement maps and CLI knobs.
SDB_KIND = "sdb"
DDB_KIND = "ddb"
BACKEND_KINDS = (SDB_KIND, DDB_KIND)


def _retry_unavailable(fn, *args, attempts: int = 4, **kwargs):
    """Re-issue a request through transient 503s (SDK behaviour: the
    error is raised before state mutates, so immediate retry is safe).
    Mirrors ``repro.core.base.call_with_retries`` — kept local so the
    AWS layer does not depend on the architecture layer."""
    for attempt in range(attempts):
        try:
            return fn(*args, **kwargs)
        except ServiceUnavailable:
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


class ProvenanceBackend(Protocol):
    """What a shard store must provide to hold provenance items.

    A *store* is one shard's namespace: a SimpleDB domain or a DynamoDB
    style table, named identically on either backend (``pass-prov``,
    ``pass-prov-00``, ...). Items are ``name -> tuple-of-values``
    attribute maps — the shape the serialiser produces — and writes
    merge values as sets, so replaying any write is idempotent on every
    backend.
    """

    #: Short kind name ("sdb" / "ddb") — what placement maps reference.
    kind: str

    def provision(self, store: str) -> None:
        """Create the shard store (idempotent)."""
        ...

    def drop(self, store: str) -> None:
        """Delete the shard store and everything in it."""
        ...

    def put_provenance_item(
        self, store: str, item_name: str, attributes: list[tuple[str, str]]
    ) -> None:
        """Merge attribute values into one item, per backend limits."""
        ...

    def delete_item(self, store: str, item_name: str) -> None:
        """Remove one whole item (idempotent)."""
        ...

    def get_item(self, store: str, item_name: str) -> dict[str, tuple[str, ...]]:
        """Point-read one item's attributes ({} when not visible)."""
        ...

    def query_pages(
        self,
        store: str,
        expression: str,
        select: str,
        select_mode: bool,
        attribute_names: list[str] | None,
    ) -> Iterator[tuple[str, dict[str, tuple[str, ...]]]]:
        """Matching (item name, projected attrs) pairs, paged through
        the backend's native read path."""
        ...

    def enumerate_items(
        self, store: str
    ) -> Iterator[tuple[str, dict[str, tuple[str, ...]]]]:
        """Every item with full attributes, via the backend's natural
        full-read pattern (what Q1-over-everything costs here)."""
        ...

    def scan_pages(
        self, store: str
    ) -> Iterator[tuple[str, dict[str, tuple[str, ...]]]]:
        """Every item with full attributes, for migration/recovery scans."""
        ...

    def item_count(self, store: str) -> int:
        """Authoritative number of items (skew reporting; 0 if absent)."""
        ...

    def authoritative_item(
        self, store: str, item_name: str
    ) -> dict[str, tuple[str, ...]] | None:
        """Oracle read bypassing replication (tests/migration checks)."""
        ...

    def authoritative_item_names(self, store: str) -> list[str]:
        ...


class SimpleDBBackend:
    """The paper's backend: one SimpleDB domain per shard store.

    Request sequences are byte-identical to the pre-protocol code paths
    — the meter cannot tell this adapter from the historical inline
    calls (the baselines gate enforces exactly that).
    """

    kind = SDB_KIND

    def __init__(self, service: SimpleDBService):
        self.service = service

    def provision(self, store: str) -> None:
        self.service.create_domain(store)

    def drop(self, store: str) -> None:
        self.service.delete_domain(store)

    def put_provenance_item(
        self, store: str, item_name: str, attributes: list[tuple[str, str]]
    ) -> None:
        """PutAttributes in batches of ≤100 (§4.2 step 3 / §4.3 2(c))."""
        attrs = [Attribute(name, value) for name, value in attributes]
        for start in range(0, len(attrs), SDB_MAX_ATTRS_PER_CALL):
            _retry_unavailable(
                self.service.put_attributes,
                store,
                item_name,
                attrs[start : start + SDB_MAX_ATTRS_PER_CALL],
            )

    def delete_item(self, store: str, item_name: str) -> None:
        self.service.delete_attributes(store, item_name)

    def get_item(self, store: str, item_name: str) -> dict[str, tuple[str, ...]]:
        return self.service.get_attributes(store, item_name)

    def query_pages(self, store, expression, select, select_mode, attribute_names):
        """Query/QueryWithAttributes (or SELECT) with result pagination
        — the §2.2 front-ends, projected server-side."""
        token: str | None = None
        while True:
            if select_mode:
                page = self.service.select(select, next_token=token)
            else:
                page = self.service.query_with_attributes(
                    store,
                    expression,
                    attribute_names=attribute_names,
                    next_token=token,
                )
            yield from page.items
            token = page.next_token
            if token is None:
                return

    def enumerate_items(self, store):
        """The §5 Q1-over-everything pattern: page every item *name*
        with Query, then one GetAttributes per item — SimpleDB cannot
        "generalise the query", so each item is its own round trip."""
        token: str | None = None
        names: list[str] = []
        while True:
            page = self.service.query(store, None, next_token=token)
            names.extend(page.item_names)
            token = page.next_token
            if token is None:
                break
        for item_name in names:
            yield item_name, self.service.get_attributes(store, item_name)

    def scan_pages(self, store):
        """Full-domain QueryWithAttributes paging (migration/recovery)."""
        token: str | None = None
        while True:
            page = self.service.query_with_attributes(store, None, next_token=token)
            yield from page.items
            token = page.next_token
            if token is None:
                return

    def item_count(self, store: str) -> int:
        return self.service.item_count(store)

    def authoritative_item(self, store, item_name):
        return self.service.authoritative_item(store, item_name)

    def authoritative_item_names(self, store: str) -> list[str]:
        return self.service.authoritative_item_names(store)


class DynamoBackend:
    """A shard store on the DynamoDB-style service (one table each).

    ``consistent_reads=True`` upgrades point reads and scans to strongly
    consistent (double read units, no replica staleness) — per-backend
    the choice SimpleDB never offered.
    """

    kind = DDB_KIND

    #: Simulated-clock seconds one throttled request backs off before
    #: retrying (a fresh admission window opens every second).
    backoff_seconds = 0.25
    #: Bounded backoff attempts: a table too small for even one request
    #: per window must surface the throttle, not spin forever.
    max_backoffs = 400

    def __init__(self, service: DynamoDBService, consistent_reads: bool = False):
        self.service = service
        self.consistent_reads = consistent_reads
        #: Throttle events ridden out (observability for benchmarks).
        self.throttled_requests = 0

    # Admission control: provisioned throughput is per simulated second,
    # so backing off means advancing the simulated clock — the client
    # *waits*, exactly like SDK exponential backoff against 400s.
    def _with_backoff(self, fn, *args, **kwargs):
        for _ in range(self.max_backoffs):
            try:
                return _retry_unavailable(fn, *args, **kwargs)
            except ProvisionedThroughputExceeded:
                self.throttled_requests += 1
                self.service.clock.advance(self.backoff_seconds)
        return _retry_unavailable(fn, *args, **kwargs)  # last try surfaces it

    def provision(self, store: str) -> None:
        self.service.create_table(store)

    def drop(self, store: str) -> None:
        self.service.delete_table(store)

    def put_provenance_item(
        self, store: str, item_name: str, attributes: list[tuple[str, str]]
    ) -> None:
        """One string-set UpdateItem — no attribute batching limit."""
        self._with_backoff(self.service.update_item, store, item_name, list(attributes))

    def delete_item(self, store: str, item_name: str) -> None:
        self._with_backoff(self.service.delete_item, store, item_name)

    def get_item(self, store: str, item_name: str) -> dict[str, tuple[str, ...]]:
        return self._with_backoff(
            self.service.get_item, store, item_name, consistent=self.consistent_reads
        )

    def _scan_all(self, store: str):
        """Paged Scan over the whole table (the only read path there is)."""
        start_key: str | None = None
        while True:
            page = self._with_backoff(
                self.service.scan,
                store,
                exclusive_start_key=start_key,
                consistent=self.consistent_reads,
            )
            yield from page.items
            start_key = page.last_evaluated_key
            if start_key is None:
                return

    def query_pages(self, store, expression, select, select_mode, attribute_names):
        """Scan + client-side filtering with the *same* compiled
        predicate SimpleDB evaluates server-side (``select`` and
        ``select_mode`` are SimpleDB wire-language choices and do not
        apply here). Every scanned item is paid for in read units; the
        projection trims only what the caller sees, not what the scan
        cost — DynamoDB's filter-expression accounting."""
        compiled = parse_query(expression)
        wanted = None if attribute_names is None else set(attribute_names)
        for item_name, attrs in run_query(list(self._scan_all(store)), compiled):
            if wanted is not None:
                attrs = {k: v for k, v in attrs.items() if k in wanted}
            yield item_name, dict(attrs)

    def enumerate_items(self, store):
        """Scan pages already carry full items — no per-item round trip
        (the backend-appropriate Q1-over-everything read)."""
        yield from self._scan_all(store)

    def scan_pages(self, store):
        yield from self._scan_all(store)

    def item_count(self, store: str) -> int:
        return self.service.item_count(store)

    def authoritative_item(self, store, item_name):
        return self.service.authoritative_item(store, item_name)

    def authoritative_item_names(self, store: str) -> list[str]:
        return self.service.authoritative_item_names(store)
