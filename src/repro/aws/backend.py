"""The ProvenanceBackend protocol: one shard store, two services.

Extracted from the SimpleDB-only store path so the shard router can
place each provenance shard on a *named backend* — the paper's single
SimpleDB domain (§4.2) or the DynamoDB-style service
(:mod:`repro.aws.dynamo`). Every writer (the A2 client path, the A3
commit daemon), the rebalancer, and all three query classes go through
this protocol, so adding a backend never forks the store protocol
logic.

Two implementations:

* :class:`SimpleDBBackend` — a zero-cost adapter over
  :class:`~repro.aws.simpledb.SimpleDBService`. It issues **exactly**
  the request sequences the pre-protocol code issued (same operations,
  same batching, same pagination), so an all-SimpleDB placement is
  byte-identical on the billing meter to the historical engine — the
  invariant ``benchmarks/check_baselines.py`` and the backend property
  suite pin.
* :class:`DynamoBackend` — maps the same item model onto the
  DynamoDB-style service: ``put`` becomes one idempotent string-set
  ``UpdateItem`` (no 100-attribute batching — DynamoDB has no such
  limit), point reads become ``GetItem`` (eventually consistent by
  default, like SimpleDB replica reads; ``consistent_reads=True`` buys
  strong reads at double the read units). Query phases are served from
  a **global secondary index** when the table carries one whose key
  attribute the predicate restricts by equality and whose projection
  covers every attribute the predicate (and the caller's projection)
  references: the adapter extracts the equality values from the *same*
  compiled predicate SimpleDB evaluates server-side, pages the index
  Query, and re-applies the predicate to the projected entries. When no
  usable index exists — or the chosen index is lagging its base table
  past ``index_staleness_bound`` simulated seconds — the phase falls
  back to the paged ``Scan`` + client-side filter path, so result sets
  are identical across backends while the metered cost differs
  honestly. Throttled requests back off by advancing the simulated
  clock.

Index declarations come from :func:`parse_index_specs` (the
``REPRO_DDB_INDEXES`` environment variable, a ``Simulation``/
``ClientFleet`` argument, or ``repro demo --ddb-indexes``): a
comma-separated list of key attributes, each optionally followed by
``+included`` projection attributes — ``"name,input"`` declares the two
provenance GSIs (program lookups key on ``name``, cross-reference
phases on ``input``; both project ``type``) that serve Q2/Q3.

Backend *kinds* are the short names placement maps use: ``"sdb"`` and
``"ddb"`` (see :func:`repro.sharding.parse_placement`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Protocol

from repro.aws.dynamo import DynamoDBService, IndexSpec
from repro.aws.sdb_query import (
    BoolOp,
    BracketPredicate,
    Comparison,
    CompiledQuery,
    Node,
    Not,
    Null,
    parse_query,
    run_query,
)
from repro.aws.simpledb import Attribute, SimpleDBService
from repro.errors import ProvisionedThroughputExceeded, ServiceUnavailable
from repro.units import (
    DDB_MAX_BATCH_WRITE_ITEMS,
    SDB_MAX_ATTRS_PER_CALL,
    SDB_MAX_BATCH_PUT_ITEMS,
)

#: Backend kind names, as used in placement maps and CLI knobs.
SDB_KIND = "sdb"
DDB_KIND = "ddb"
BACKEND_KINDS = (SDB_KIND, DDB_KIND)

#: Environment variable holding the default GSI spec for DynamoDB-placed
#: shards (CI sets it to enable indexes for a whole suite pass).
INDEX_ENV = "REPRO_DDB_INDEXES"

#: What the ``"auto"`` spec enables: the two indexes the provenance
#: query workload wants — Q2 phase 1 keys on ``name``, Q2 phase 2 and
#: every Q3 BFS round key on ``input``; both project ``type`` so the
#: engine's predicates and projections evaluate entirely on the index.
DEFAULT_DDB_INDEXES = "name,input"

#: Projection included when a spec names only the key attribute.
DEFAULT_INDEX_INCLUDE = ("type",)

#: How stale (simulated seconds of replication lag) an index may run
#: before the adapter prefers a base-table Scan over querying it.
INDEX_STALENESS_BOUND = 5.0


def parse_index_specs(
    spec: str | tuple[IndexSpec, ...] | list[IndexSpec] | None = None,
) -> tuple[IndexSpec, ...]:
    """Normalise a GSI spec to a tuple of :class:`IndexSpec`.

    Accepted specs:

    * ``None`` — the ``REPRO_DDB_INDEXES`` environment spec, or no
      indexes when unset (the PR-3 scan-only behaviour);
    * ``""`` / ``"none"`` / ``"off"`` — no indexes;
    * ``"auto"`` / ``"default"`` / ``"on"`` — the provenance defaults
      (:data:`DEFAULT_DDB_INDEXES`);
    * ``"name,input"`` — one index per key attribute, projecting
      :data:`DEFAULT_INDEX_INCLUDE`;
    * ``"input+type+name"`` — explicit ``key+include+include`` parts;
    * ``"type+*"`` — a ``*`` include is DynamoDB's ``ALL`` projection
      (entries carry the whole item — what index-streamed migration
      reads need);
    * ``"name@40"`` / ``"input+type@40:20"`` — an ``@WCU[:RCU]`` suffix
      provisions the index's *own* capacity, so its maintenance writes
      (and Query reads, with ``:RCU``) throttle independently of the
      base table's window;
    * ``"name/nonce+*"`` / ``"type/nonce"`` — a ``hash/range`` key pair
      declares a **composite** index (DynamoDB's hash+range schema):
      entries sort by the range attribute within each hash partition
      and ``query_index`` can serve range conditions
      (``between``/``>=``/``<=``) over one contiguous slice. Composite
      indexes are sparse on *both* attributes, so a query phase may only
      be served from one when its predicate constrains the range
      attribute (see :meth:`DynamoBackend._first_fit`);
    * a sequence of ready :class:`IndexSpec` objects (passed through).

    >>> [s.name for s in parse_index_specs("name,input")]
    ['gsi-name', 'gsi-input']
    >>> spec, = parse_index_specs("type+*@40:20")
    >>> (spec.project_all, spec.wcu, spec.rcu)
    (True, 40, 20)
    """
    if spec is None:
        spec = os.environ.get(INDEX_ENV, "").strip()
    if not isinstance(spec, str):
        return tuple(spec)
    text = spec.strip()
    if not text or text.lower() in ("none", "off"):
        return ()
    if text.lower() in ("auto", "default", "on"):
        text = DEFAULT_DDB_INDEXES
    specs: list[IndexSpec] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        part, _, capacity = part.partition("@")
        wcu = rcu = None
        if capacity:
            wcu_text, _, rcu_text = capacity.partition(":")
            try:
                wcu = int(wcu_text)
                rcu = int(rcu_text) if rcu_text else None
            except ValueError:
                raise ValueError(f"bad DynamoDB index capacity {spec!r}") from None
        key, *include = [piece.strip() for piece in part.split("+")]
        if not key or not all(include):
            raise ValueError(f"bad DynamoDB index spec {spec!r}")
        key, slash, range_attr = key.partition("/")
        if slash and not (key and range_attr):
            raise ValueError(f"bad DynamoDB index spec {spec!r}")
        project_all = "*" in include
        include = tuple(piece for piece in include if piece != "*")
        specs.append(
            IndexSpec(
                name=f"gsi-{key}-{range_attr}" if range_attr else f"gsi-{key}",
                key_attribute=key,
                range_attribute=range_attr or None,
                include=include or (() if project_all else DEFAULT_INDEX_INCLUDE),
                project_all=project_all,
                wcu=wcu,
                rcu=rcu,
            )
        )
    return tuple(specs)


def _equality_candidates(node: Node) -> dict[str, tuple[str, ...]]:
    """Attributes a predicate pins to an equality value set.

    For each returned ``attribute → values``, *every* item matching the
    predicate has some value of that attribute inside ``values`` — the
    superset guarantee that makes an index on the attribute a sound
    access path (query the index for each value, then re-apply the full
    predicate to the candidates).
    """
    if isinstance(node, BracketPredicate):
        # CNF over one value: the satisfying value must be in any
        # all-equality OR-group's value set.
        for group in node.conjunctions:
            if group and all(c.op == "=" for c in group):
                return {
                    node.attribute: tuple(dict.fromkeys(c.value for c in group))
                }
        return {}
    if isinstance(node, Comparison):
        if node.op == "=" and not node.every:
            return {node.attribute: (node.value,)}
        return {}
    if isinstance(node, BoolOp):
        left = _equality_candidates(node.left)
        right = _equality_candidates(node.right)
        if node.op == "and":
            # Either side's restriction is a valid superset filter.
            merged = dict(left)
            merged.update(right)
            return merged
        # OR: only attributes restricted on *both* sides stay pinned.
        return {
            attribute: tuple(dict.fromkeys(left[attribute] + right[attribute]))
            for attribute in left
            if attribute in right
        }
    return {}  # Not / Null / MatchAll pin nothing


def _range_candidates(node: Node) -> dict[str, tuple[str | None, str | None]]:
    """Attributes a predicate constrains to an inclusive value range.

    For each returned ``attribute → (lo, hi)`` (either bound may be
    ``None`` = unbounded), *every* item matching the predicate carries
    at least one value of that attribute inside the range — both the
    presence guarantee a sparse composite index needs (an item lacking
    the range attribute has no entries, and also cannot match the
    predicate) and the slice-superset guarantee that makes a
    range-conditioned index Query sound (query the slice, then re-apply
    the full predicate). Strict bounds are relaxed to inclusive ones —
    a slightly wider slice is still a superset.
    """
    if isinstance(node, BracketPredicate):
        lo: str | None = None
        hi: str | None = None
        for group in node.conjunctions:
            # Only singleton groups constrain: an OR-group is satisfied
            # by any of its comparisons, so it pins nothing by itself.
            if len(group) != 1:
                continue
            comparison = group[0]
            if comparison.op in (">=", ">", "="):
                if lo is None or comparison.value > lo:
                    lo = comparison.value
            if comparison.op in ("<=", "<", "="):
                if hi is None or comparison.value < hi:
                    hi = comparison.value
        if lo is None and hi is None:
            return {}
        return {node.attribute: (lo, hi)}
    if isinstance(node, Comparison) and not node.every:
        if node.op in (">=", ">"):
            return {node.attribute: (node.value, None)}
        if node.op in ("<=", "<"):
            return {node.attribute: (None, node.value)}
        if node.op == "=":
            return {node.attribute: (node.value, node.value)}
        return {}
    if isinstance(node, BoolOp):
        left = _range_candidates(node.left)
        right = _range_candidates(node.right)
        if node.op == "and":
            # Both sides must hold: intersect bounds per attribute.
            merged = dict(left)
            for attribute, (lo, hi) in right.items():
                if attribute in merged:
                    mlo, mhi = merged[attribute]
                    if lo is None or (mlo is not None and mlo > lo):
                        lo = mlo
                    if hi is None or (mhi is not None and mhi < hi):
                        hi = mhi
                merged[attribute] = (lo, hi)
            return merged
        # OR: only attributes constrained on *both* sides stay
        # constrained, by the union (widest) of the two ranges.
        merged = {}
        for attribute in left:
            if attribute not in right:
                continue
            llo, lhi = left[attribute]
            rlo, rhi = right[attribute]
            lo = None if llo is None or rlo is None else min(llo, rlo)
            hi = None if lhi is None or rhi is None else max(lhi, rhi)
            if lo is not None or hi is not None:
                merged[attribute] = (lo, hi)
        return merged
    return {}  # Not / Null / MatchAll constrain nothing


def range_condition_for(bounds: tuple[str | None, str | None]) -> tuple[str, ...]:
    """Convert inclusive ``(lo, hi)`` bounds to a ``query_index`` range
    condition tuple."""
    lo, hi = bounds
    if lo is not None and hi is not None:
        return ("between", lo, hi)
    if lo is not None:
        return (">=", lo)
    assert hi is not None
    return ("<=", hi)


@dataclass(frozen=True)
class AccessPath:
    """One executable access path for a query phase on one shard store.

    ``kind`` is ``"sdb"`` (the SimpleDB native query — the only path
    that backend has), ``"scan"`` (paged base-table Scan + client-side
    filter), ``"gsi"`` (equality Query over a secondary index for
    ``values``), or ``"gsi-range"`` (composite-index Query for
    ``values`` with ``range_condition`` restricting the partition
    slice). The planner enumerates these via
    :meth:`DynamoBackend.candidate_paths`, prices them, and hands the
    winner back through ``query_pages(..., path=...)``.
    """

    kind: str
    index: IndexSpec | None = None
    values: tuple[str, ...] = ()
    range_condition: tuple[str, ...] | None = None


#: The backend-native default paths (module-level singletons so plan
#: comparisons are cheap identity checks).
SDB_PATH = AccessPath("sdb")
SCAN_PATH = AccessPath("scan")


def _referenced_attributes(node: Node) -> frozenset[str]:
    """Every attribute the predicate reads — all must be projected for
    the predicate to evaluate identically on index entries."""
    if isinstance(node, (BracketPredicate, Comparison, Null)):
        return frozenset((node.attribute,))
    if isinstance(node, BoolOp):
        return _referenced_attributes(node.left) | _referenced_attributes(node.right)
    if isinstance(node, Not):
        return _referenced_attributes(node.operand)
    return frozenset()


def _retry_unavailable(fn, *args, attempts: int = 4, **kwargs):
    """Re-issue a request through transient 503s (SDK behaviour: the
    error is raised before state mutates, so immediate retry is safe).
    Mirrors ``repro.core.base.call_with_retries`` — kept local so the
    AWS layer does not depend on the architecture layer."""
    for attempt in range(attempts):
        try:
            return fn(*args, **kwargs)
        except ServiceUnavailable:
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


class ProvenanceBackend(Protocol):
    """What a shard store must provide to hold provenance items.

    A *store* is one shard's namespace: a SimpleDB domain or a DynamoDB
    style table, named identically on either backend (``pass-prov``,
    ``pass-prov-00``, ...). Items are ``name -> tuple-of-values``
    attribute maps — the shape the serialiser produces — and writes
    merge values as sets, so replaying any write is idempotent on every
    backend.
    """

    #: Short kind name ("sdb" / "ddb") — what placement maps reference.
    kind: str

    def provision(self, store: str) -> None:
        """Create the shard store (idempotent)."""
        ...

    def drop(self, store: str) -> None:
        """Delete the shard store and everything in it."""
        ...

    def put_provenance_item(
        self, store: str, item_name: str, attributes: list[tuple[str, str]]
    ) -> None:
        """Merge attribute values into one item, per backend limits."""
        ...

    def put_provenance_items(
        self, store: str, items: list[tuple[str, list[tuple[str, str]]]]
    ) -> None:
        """Merge many items in as few round trips as the backend's batch
        API allows. Same merge semantics as repeated
        :meth:`put_provenance_item` — replaying any batch is idempotent —
        but the request count (and therefore the per-request charges)
        amortises across the batch."""
        ...

    def delete_item(self, store: str, item_name: str) -> None:
        """Remove one whole item (idempotent)."""
        ...

    def get_item(self, store: str, item_name: str) -> dict[str, tuple[str, ...]]:
        """Point-read one item's attributes ({} when not visible)."""
        ...

    def query_pages(
        self,
        store: str,
        expression: str,
        select: str,
        select_mode: bool,
        attribute_names: list[str] | None,
        compiled: CompiledQuery | None = None,
        path: AccessPath | None = None,
    ) -> Iterator[tuple[str, dict[str, tuple[str, ...]]]]:
        """Matching (item name, projected attrs) pairs, paged through
        the backend's native read path.

        ``compiled`` is the pre-parsed form of ``expression`` — callers
        issuing the same query against many shards compile once and pass
        it through (parsing is client CPU, never metered, so this is
        meter-neutral). ``path`` pins a specific
        :class:`AccessPath` chosen by the query planner; ``None`` keeps
        the backend's native choice (SimpleDB Select / first-fit GSI).
        """
        ...

    def site_statistics(self, store: str) -> dict:
        """Metered store statistics for the query planner's cost model
        (DomainMetadata / DescribeTable — cheap, incrementally
        maintained by the service, never sampled)."""
        ...

    def enumerate_items(
        self, store: str
    ) -> Iterator[tuple[str, dict[str, tuple[str, ...]]]]:
        """Every item with full attributes, via the backend's natural
        full-read pattern (what Q1-over-everything costs here)."""
        ...

    def scan_pages(
        self, store: str
    ) -> Iterator[tuple[str, dict[str, tuple[str, ...]]]]:
        """Every item with full attributes, for migration/recovery scans."""
        ...

    def migration_pages(
        self, store: str
    ) -> tuple[bool, Iterator[tuple[str, dict[str, tuple[str, ...]]]]]:
        """Best full-item read stream for a migration: (via_index, pages).

        ``via_index`` is True when the stream comes off a covering
        (ALL-projection) secondary index instead of the base store —
        cheaper pages on the DynamoDB-style backend, impossible on
        SimpleDB.
        """
        ...

    def item_count(self, store: str) -> int:
        """Authoritative number of items (skew reporting; 0 if absent)."""
        ...

    def authoritative_item(
        self, store: str, item_name: str
    ) -> dict[str, tuple[str, ...]] | None:
        """Oracle read bypassing replication (tests/migration checks)."""
        ...

    def authoritative_item_names(self, store: str) -> list[str]:
        ...


class SimpleDBBackend:
    """The paper's backend: one SimpleDB domain per shard store.

    Request sequences are byte-identical to the pre-protocol code paths
    — the meter cannot tell this adapter from the historical inline
    calls (the baselines gate enforces exactly that).
    """

    kind = SDB_KIND

    def __init__(self, service: SimpleDBService):
        self.service = service

    def provision(self, store: str) -> None:
        self.service.create_domain(store)

    def drop(self, store: str) -> None:
        self.service.delete_domain(store)

    def put_provenance_item(
        self, store: str, item_name: str, attributes: list[tuple[str, str]]
    ) -> None:
        """PutAttributes in batches of ≤100 (§4.2 step 3 / §4.3 2(c))."""
        attrs = [Attribute(name, value) for name, value in attributes]
        for start in range(0, len(attrs), SDB_MAX_ATTRS_PER_CALL):
            _retry_unavailable(
                self.service.put_attributes,
                store,
                item_name,
                attrs[start : start + SDB_MAX_ATTRS_PER_CALL],
            )

    def put_provenance_items(
        self, store: str, items: list[tuple[str, list[tuple[str, str]]]]
    ) -> None:
        """BatchPutAttributes in calls of ≤25 entries.

        An item wider than the 100-attributes-per-entry limit becomes
        several entries for the same item name (the service merges
        repeated entries sequentially, so the result matches chunked
        PutAttributes calls); entries then pack into ≤25-entry batch
        calls. One batch call bills one box-usage charge where the
        single-item path would bill up to 25.
        """
        entries: list[tuple[str, list[Attribute]]] = []
        for item_name, attributes in items:
            attrs = [Attribute(name, value) for name, value in attributes]
            for start in range(0, len(attrs), SDB_MAX_ATTRS_PER_CALL):
                entries.append(
                    (item_name, attrs[start : start + SDB_MAX_ATTRS_PER_CALL])
                )
        for start in range(0, len(entries), SDB_MAX_BATCH_PUT_ITEMS):
            _retry_unavailable(
                self.service.batch_put_attributes,
                store,
                entries[start : start + SDB_MAX_BATCH_PUT_ITEMS],
            )

    def delete_item(self, store: str, item_name: str) -> None:
        self.service.delete_attributes(store, item_name)

    def get_item(self, store: str, item_name: str) -> dict[str, tuple[str, ...]]:
        return self.service.get_attributes(store, item_name)

    def query_pages(
        self,
        store,
        expression,
        select,
        select_mode,
        attribute_names,
        compiled=None,
        path=None,
    ):
        """Query/QueryWithAttributes (or SELECT) with result pagination
        — the §2.2 front-ends, projected server-side.

        ``compiled`` and ``path`` are accepted for protocol parity and
        ignored: SimpleDB evaluates the wire expression server-side and
        has exactly one access path, so the request sequence (and the
        meter) cannot depend on either.
        """
        token: str | None = None
        while True:
            if select_mode:
                page = self.service.select(select, next_token=token)
            else:
                page = self.service.query_with_attributes(
                    store,
                    expression,
                    attribute_names=attribute_names,
                    next_token=token,
                )
            yield from page.items
            token = page.next_token
            if token is None:
                return

    def enumerate_items(self, store):
        """The §5 Q1-over-everything pattern: page every item *name*
        with Query, then one GetAttributes per item — SimpleDB cannot
        "generalise the query", so each item is its own round trip."""
        token: str | None = None
        names: list[str] = []
        while True:
            page = self.service.query(store, None, next_token=token)
            names.extend(page.item_names)
            token = page.next_token
            if token is None:
                break
        for item_name in names:
            yield item_name, self.service.get_attributes(store, item_name)

    def scan_pages(self, store):
        """Full-domain QueryWithAttributes paging (migration/recovery)."""
        token: str | None = None
        while True:
            page = self.service.query_with_attributes(store, None, next_token=token)
            yield from page.items
            token = page.next_token
            if token is None:
                return

    def migration_pages(self, store):
        """SimpleDB has no secondary access path — always the scan."""
        return False, self.scan_pages(store)

    def site_statistics(self, store: str) -> dict:
        """One metered DomainMetadata call — item/byte counts plus
        per-attribute distinct-value aggregates."""
        return _retry_unavailable(self.service.domain_metadata, store)

    def plan_first_fit(self, store, compiled, wanted) -> AccessPath:
        """SimpleDB's first fit is its only fit."""
        return SDB_PATH

    def candidate_paths(self, store, compiled, wanted) -> list[AccessPath]:
        """The one access path this backend has: server-side Select."""
        return [SDB_PATH]

    def item_count(self, store: str) -> int:
        return self.service.item_count(store)

    def authoritative_item(self, store, item_name):
        return self.service.authoritative_item(store, item_name)

    def authoritative_item_names(self, store: str) -> list[str]:
        return self.service.authoritative_item_names(store)


class DynamoBackend:
    """A shard store on the DynamoDB-style service (one table each).

    ``consistent_reads=True`` upgrades point reads and scans to strongly
    consistent (double read units, no replica staleness) — per-backend
    the choice SimpleDB never offered. Index queries stay eventually
    consistent regardless (GSIs offer nothing stronger).

    ``index_specs`` (a spec string or ready :class:`IndexSpec` tuple;
    default: the ``REPRO_DDB_INDEXES`` environment spec) declares the
    GSIs :meth:`provision` creates on every shard table; query phases
    whose predicate an index can serve then use it instead of scanning,
    unless the index's replication lag exceeds
    ``index_staleness_bound`` simulated seconds.
    """

    kind = DDB_KIND

    #: Simulated-clock seconds one throttled request backs off before
    #: retrying (a fresh admission window opens every second).
    backoff_seconds = 0.25
    #: Bounded backoff attempts: a table too small for even one request
    #: per window must surface the throttle, not spin forever.
    max_backoffs = 400

    def __init__(
        self,
        service: DynamoDBService,
        consistent_reads: bool = False,
        index_specs: str | tuple[IndexSpec, ...] | None = None,
        index_staleness_bound: float | None = INDEX_STALENESS_BOUND,
    ):
        self.service = service
        self.consistent_reads = consistent_reads
        self.index_specs = parse_index_specs(index_specs)
        self.index_staleness_bound = index_staleness_bound
        #: Throttle events ridden out (observability for benchmarks).
        self.throttled_requests = 0
        #: query_pages calls served by a GSI Query.
        self.gsi_queries = 0
        #: query_pages calls that fell back to Scan (no usable index).
        self.scan_fallbacks = 0
        #: Fallbacks caused specifically by the staleness bound.
        self.stale_index_fallbacks = 0
        #: Write units spent backfilling indexes at provision time.
        self.index_backfill_units = 0.0
        #: migration_pages calls served off an ALL-projection GSI.
        self.migration_index_streams = 0

    # Admission control: provisioned throughput is per simulated second,
    # so backing off means advancing the simulated clock — the client
    # *waits*, exactly like SDK exponential backoff against 400s.
    def _with_backoff(self, fn, *args, **kwargs):
        for _ in range(self.max_backoffs):
            try:
                return _retry_unavailable(fn, *args, **kwargs)
            except ProvisionedThroughputExceeded:
                self.throttled_requests += 1
                self.service.clock.advance(self.backoff_seconds)
        return _retry_unavailable(fn, *args, **kwargs)  # last try surfaces it

    def provision(self, store: str) -> None:
        """Create the shard table and its declared GSIs (idempotent).

        Creating an index on a table that already holds items backfills
        it; the backfill's metered write units accumulate on
        :attr:`index_backfill_units` (what a migration pays to make a
        destination queryable by index).
        """
        self.service.create_table(store)
        for spec in self.index_specs:
            self.index_backfill_units += self.service.create_index(store, spec)

    def drop(self, store: str) -> None:
        self.service.delete_table(store)

    def put_provenance_item(
        self, store: str, item_name: str, attributes: list[tuple[str, str]]
    ) -> None:
        """One string-set UpdateItem — no attribute batching limit."""
        self._with_backoff(self.service.update_item, store, item_name, list(attributes))

    def put_provenance_items(
        self, store: str, items: list[tuple[str, list[tuple[str, str]]]]
    ) -> None:
        """BatchWriteItem in calls of ≤25 put requests.

        Write units price the bytes either way — what the batch saves is
        the per-request charge. The service admits each entry against
        the provisioned window independently and hands back the rest as
        ``UnprocessedItems``; this loop retries exactly that remainder
        after the standard backoff, mirroring :meth:`_with_backoff`'s
        accounting (each retry round counts one throttle event and
        advances the simulated clock).
        """
        pending = [(name, list(attrs)) for name, attrs in items]
        while pending:
            chunk = pending[:DDB_MAX_BATCH_WRITE_ITEMS]
            rest = pending[DDB_MAX_BATCH_WRITE_ITEMS:]
            backoffs = 0
            while chunk:
                try:
                    chunk = _retry_unavailable(
                        self.service.batch_write_item, store, chunk
                    )
                except ProvisionedThroughputExceeded:
                    # Every entry throttled: nothing applied, nothing
                    # metered — retry the whole chunk (or surface it).
                    if backoffs >= self.max_backoffs:
                        raise
                if not chunk:
                    break
                if backoffs >= self.max_backoffs:
                    raise ProvisionedThroughputExceeded(
                        f"BatchWriteItem left {len(chunk)} unprocessed entries "
                        f"after {self.max_backoffs} backoffs"
                    )
                backoffs += 1
                self.throttled_requests += 1
                self.service.clock.advance(self.backoff_seconds)
            pending = rest

    def delete_item(self, store: str, item_name: str) -> None:
        self._with_backoff(self.service.delete_item, store, item_name)

    def get_item(self, store: str, item_name: str) -> dict[str, tuple[str, ...]]:
        return self._with_backoff(
            self.service.get_item, store, item_name, consistent=self.consistent_reads
        )

    def _scan_all(self, store: str):
        """Paged Scan over the whole table (the only read path there is)."""
        start_key: str | None = None
        while True:
            page = self._with_backoff(
                self.service.scan,
                store,
                exclusive_start_key=start_key,
                consistent=self.consistent_reads,
            )
            yield from page.items
            start_key = page.last_evaluated_key
            if start_key is None:
                return

    def query_pages(
        self,
        store,
        expression,
        select,
        select_mode,
        attribute_names,
        compiled=None,
        path=None,
    ):
        """Serve one logical query from a GSI when possible, else Scan.

        The *same* compiled predicate SimpleDB evaluates server-side is
        used here (``select`` and ``select_mode`` are SimpleDB wire
        language choices and do not apply; callers that already compiled
        the expression pass it via ``compiled``); if it pins an indexed
        attribute to equality values and the index projection covers
        everything the predicate and the caller read, the phase becomes
        a paged index Query over those values — paying read units only
        for matching projected entries — with the predicate re-applied
        client-side (entries may be stale or partial mid-convergence)
        and items deduplicated across entry keys. Otherwise it is the
        scan path: every scanned item is paid for in read units; the
        projection trims only what the caller sees, not what the scan
        cost — DynamoDB's filter-expression accounting.

        ``path`` pins a planner-chosen :class:`AccessPath` instead of
        the first-fit choice. A pinned index path is re-checked against
        the staleness bound at execution time (plans are made from
        statistics that may have aged); a stale index falls back to the
        Scan path, counted like any other stale fallback.
        """
        if compiled is None:
            compiled = parse_query(expression)
        wanted = None if attribute_names is None else set(attribute_names)
        if path is None:
            path = self._index_plan(store, compiled, wanted)
        elif path.kind in ("gsi", "gsi-range"):
            lag = self.service.index_lag_seconds(store, path.index.name)
            if (
                self.index_staleness_bound is not None
                and lag > self.index_staleness_bound
            ):
                self.stale_index_fallbacks += 1
                self.scan_fallbacks += 1
                path = SCAN_PATH
        if path.kind in ("gsi", "gsi-range"):
            self.gsi_queries += 1
            yield from self._query_via_index(
                store, path.index, path.values, compiled, wanted, path.range_condition
            )
            return
        for item_name, attrs in run_query(list(self._scan_all(store)), compiled):
            if wanted is not None:
                attrs = {k: v for k, v in attrs.items() if k in wanted}
            yield item_name, dict(attrs)

    def _first_fit(
        self, store: str, compiled: CompiledQuery, wanted: set[str] | None
    ) -> tuple[AccessPath | None, bool]:
        """First usable GSI access path, or None — counter-neutral.

        An index is usable when the predicate pins its key attribute to
        an equality value set (the superset guarantee of
        :func:`_equality_candidates`), its projection covers every
        attribute the predicate references plus the caller's requested
        projection (an ``ALL``-projection index covers anything,
        including full-item reads), and its replication lag is inside
        the staleness bound. A *composite* index is additionally usable
        only when the predicate constrains its range attribute (the
        index is sparse on that attribute, so an unconstrained predicate
        could match items the index has no entries for). Indexes are
        tried in declaration order; composite indexes are served by hash
        equality alone here — adding the range condition is the cost
        planner's improvement, not the first-fit baseline's. Returns
        ``(path, stale_seen)``.
        """
        specs = self.service.list_indexes(store)
        if not specs:
            return None, False
        candidates = _equality_candidates(compiled.predicate)
        ranges = _range_candidates(compiled.predicate)
        referenced = _referenced_attributes(compiled.predicate)
        stale = False
        for spec in specs:
            values = candidates.get(spec.key_attribute)
            if not values:
                continue
            if spec.range_attribute is not None and spec.range_attribute not in ranges:
                continue
            if not spec.covers(referenced):
                continue
            if not spec.project_all and (wanted is None or not spec.covers(wanted)):
                continue
            lag = self.service.index_lag_seconds(store, spec.name)
            if (
                self.index_staleness_bound is not None
                and lag > self.index_staleness_bound
            ):
                stale = True
                continue
            return AccessPath("gsi", spec, tuple(sorted(set(values)))), stale
        return None, stale

    def _index_plan(
        self, store: str, compiled: CompiledQuery, wanted: set[str] | None
    ) -> AccessPath:
        """The default (no-planner) choice, with fallback accounting.

        A table with no indexes at all scans without counting a
        *fallback* — there was never an index to fall back from."""
        if not self.service.list_indexes(store):
            return SCAN_PATH
        path, stale = self._first_fit(store, compiled, wanted)
        if path is not None:
            return path
        if stale:
            self.stale_index_fallbacks += 1
        self.scan_fallbacks += 1
        return SCAN_PATH

    def plan_first_fit(
        self, store: str, compiled: CompiledQuery, wanted: set[str] | None
    ) -> AccessPath:
        """What ``path=None`` would execute, without touching the
        fallback counters (the planner's baseline mode predicts this
        path's cost but execution still does its own accounting)."""
        path, _ = self._first_fit(store, compiled, wanted)
        return path if path is not None else SCAN_PATH

    def candidate_paths(
        self, store: str, compiled: CompiledQuery, wanted: set[str] | None
    ) -> list[AccessPath]:
        """Every sound access path for a compiled predicate, Scan first.

        Eligibility matches :meth:`_first_fit` exactly — same equality,
        coverage, range-constraint, and staleness rules — but *all*
        usable indexes are enumerated, and a composite index contributes
        both its hash-equality Query and the range-conditioned Query
        over the predicate's slice (strictly fewer entries served; the
        cost model prices the difference).
        """
        paths = [SCAN_PATH]
        specs = self.service.list_indexes(store)
        if not specs:
            return paths
        candidates = _equality_candidates(compiled.predicate)
        ranges = _range_candidates(compiled.predicate)
        referenced = _referenced_attributes(compiled.predicate)
        for spec in specs:
            values = candidates.get(spec.key_attribute)
            if not values:
                continue
            if spec.range_attribute is not None and spec.range_attribute not in ranges:
                continue
            if not spec.covers(referenced):
                continue
            if not spec.project_all and (wanted is None or not spec.covers(wanted)):
                continue
            lag = self.service.index_lag_seconds(store, spec.name)
            if (
                self.index_staleness_bound is not None
                and lag > self.index_staleness_bound
            ):
                continue
            ordered = tuple(sorted(set(values)))
            paths.append(AccessPath("gsi", spec, ordered))
            if spec.range_attribute is not None:
                paths.append(
                    AccessPath(
                        "gsi-range",
                        spec,
                        ordered,
                        range_condition_for(ranges[spec.range_attribute]),
                    )
                )
        return paths

    def _query_via_index(
        self,
        store: str,
        spec: IndexSpec,
        values: tuple[str, ...],
        compiled: CompiledQuery,
        wanted: set[str] | None,
        range_condition: tuple[str, ...] | None = None,
    ):
        """Paged batch Query over one index, deduplicated and re-filtered."""
        seen: set[str] = set()
        start_key: str | None = None
        ordered = sorted(set(values))
        while True:
            page = self._with_backoff(
                self.service.query_index,
                store,
                spec.name,
                ordered,
                exclusive_start_key=start_key,
                range_condition=range_condition,
            )
            for item_name, attrs in page.entries:
                if item_name in seen:
                    continue
                if not compiled.matches(attrs):
                    continue
                seen.add(item_name)
                if wanted is None:
                    yield item_name, dict(attrs)
                else:
                    yield item_name, {k: v for k, v in attrs.items() if k in wanted}
            start_key = page.last_evaluated_key
            if start_key is None:
                return

    def enumerate_items(self, store):
        """Scan pages already carry full items — no per-item round trip
        (the backend-appropriate Q1-over-everything read)."""
        yield from self._scan_all(store)

    def scan_pages(self, store):
        yield from self._scan_all(store)

    def migration_pages(self, store):
        """Stream a migration read off a covering GSI when one exists.

        Eligible indexes project ``ALL`` (entries carry the full item),
        are inside the staleness bound, and — because GSIs are sparse —
        demonstrably cover every item (the DescribeTable-style distinct
        entry count equals the table's item count). Pages then cost
        :data:`~repro.aws.billing.DDB_GSI` read units sized by compact
        index entries instead of base-table Scan units, and an index
        with its own ``rcu`` keeps the migration's read pressure off
        the base table's admission window entirely. Falls back to the
        base-table Scan otherwise — byte-identical to the pre-index
        migration read path.
        """
        spec = self._migration_index(store)
        if spec is None:
            return False, self._scan_all(store)
        self.migration_index_streams += 1
        return True, self._stream_index_items(store, spec)

    def _migration_index(self, store: str) -> IndexSpec | None:
        stale = False
        for spec in self.service.list_indexes(store):
            if not spec.project_all:
                continue
            lag = self.service.index_lag_seconds(store, spec.name)
            if (
                self.index_staleness_bound is not None
                and lag > self.index_staleness_bound
            ):
                stale = True
                continue
            if self.service.index_distinct_item_count(
                store, spec.name
            ) != self.service.item_count(store):
                continue  # sparse: some item lacks the key attribute
            return spec
        if stale:
            # Counted only when the staleness actually forced a
            # base-table scan (same semantics as the query planner).
            self.stale_index_fallbacks += 1
        return None

    def _stream_index_items(self, store: str, spec: IndexSpec):
        """Paged index Scan, deduplicated to one yield per item."""
        seen: set[str] = set()
        start_key: str | None = None
        while True:
            page = self._with_backoff(
                self.service.scan_index,
                store,
                spec.name,
                exclusive_start_key=start_key,
            )
            for item_name, attrs in page.entries:
                if item_name in seen:
                    continue
                seen.add(item_name)
                yield item_name, dict(attrs)
            start_key = page.last_evaluated_key
            if start_key is None:
                return

    def site_statistics(self, store: str) -> dict:
        """One metered DescribeTable call — table and per-index stats
        (item counts, byte totals, distinct index keys) the planner's
        cost model consumes."""
        return self._with_backoff(self.service.describe_table, store)

    def composite_index(
        self,
        store: str,
        hash_attribute: str,
        range_attribute: str,
        project_all: bool = True,
    ) -> IndexSpec | None:
        """A fresh composite ``(hash, range)`` index on the store, or
        None — what ``version_history`` probes before replacing its
        per-version GetItem loop with one range Query. ``project_all``
        demands an ``ALL`` projection (full bundles must be decodable
        straight off the entries)."""
        stale = False
        for spec in self.service.list_indexes(store):
            if spec.key_attribute != hash_attribute:
                continue
            if spec.range_attribute != range_attribute:
                continue
            if project_all and not spec.project_all:
                continue
            lag = self.service.index_lag_seconds(store, spec.name)
            if (
                self.index_staleness_bound is not None
                and lag > self.index_staleness_bound
            ):
                stale = True
                continue
            return spec
        if stale:
            self.stale_index_fallbacks += 1
        return None

    def index_range_entries(
        self,
        store: str,
        index_name: str,
        hash_value: str,
        range_condition: tuple[str, ...],
    ):
        """Paged range Query over one composite-index partition,
        deduplicated, in range-attribute order (composite entries sort
        by range value within the hash partition)."""
        seen: set[str] = set()
        start_key: str | None = None
        while True:
            page = self._with_backoff(
                self.service.query_index,
                store,
                index_name,
                [hash_value],
                exclusive_start_key=start_key,
                range_condition=range_condition,
            )
            for item_name, attrs in page.entries:
                if item_name in seen:
                    continue
                seen.add(item_name)
                yield item_name, dict(attrs)
            start_key = page.last_evaluated_key
            if start_key is None:
                return

    def item_count(self, store: str) -> int:
        return self.service.item_count(store)

    def authoritative_item(self, store, item_name):
        return self.service.authoritative_item(store, item_name)

    def authoritative_item_names(self, store: str) -> list[str]:
        return self.service.authoritative_item_names(store)
