"""Simulated ElastiCache-style read-cache tier for provenance reads.

The Q2/Q3 ancestry BFS re-reads the same hot subgraph records on every
query, so at production traffic the read path must become sublinear for
hot objects. This module provides :class:`ReadCacheAuthority` — a single
**cache authority** service fronting both provenance backends, owning
*both* halves of the cache-coherence problem rather than leaving them to
ad-hoc per-consumer caches:

* **invalidation** — every provenance put/delete path (the
  :func:`repro.core.base.put_provenance_item` choke points, orphan
  recovery, the live-migration replay/repair/scrub writes) calls
  :meth:`invalidate` / :meth:`invalidate_many`, which drop the item's
  cached entry and advance the authority's **generation** — the version
  fence that implicitly invalidates every memoised ancestry closure;
* **validation** — fills are fenced: a reader captures the generation
  *before* its backend read and the authority refuses the fill if any
  write landed in between (:meth:`put_item` / :meth:`memo_put`), closing
  the classic fill-after-invalidate race; served entries are additionally
  age-checked against the staleness bound on every hit.

Staleness contract (documented, tested by the differential harness):
a cache hit reflects backend state observed **at most**
``staleness_bound`` seconds ago (entries older than the bound are
treated as misses and dropped); the observation itself was a normal
replica read, so under eventual consistency a served value can
additionally trail the authoritative state by the replica propagation
window — the same exposure an uncached replica read has. With strong
consistency and write-through invalidation the cache never serves a
value the backend did not hold when the entry was filled.

Billing: hits, misses, and fills are metered on the ``elasticache``
key (``Get``/``Put`` requests, transfer in/out, stored bytes as node
memory) with matching ``elasticache.*`` price lines. Invalidations
piggyback on the write path's existing round trips — the authority
observes the write stream in-process — so a disabled *or* enabled cache
leaves the write path's request meter untouched; the ``--read-cache`` /
``REPRO_READ_CACHE`` knob off (the default) constructs no authority at
all and is byte-identical on the whole meter.

Capacity is bounded: fills evict least-recently-used entries (memoised
closures and item entries share one LRU ring) until the new entry fits,
counting :attr:`evictions` and returning the node memory to the meter.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Iterable

from repro.aws.billing import ELASTICACHE, Meter
from repro.clock import SimClock
from repro.concurrency import new_lock, synchronized

#: Environment variable giving the default read-cache spec.
READ_CACHE_ENV = "REPRO_READ_CACHE"

#: Default node capacity in bytes — small enough that capacity/eviction
#: behaviour is exercisable in tests, large enough to hold the working
#: set of the seed workloads' hot subgraphs.
DEFAULT_CAPACITY = 256 * 1024

#: Declared staleness bound in seconds — how old a served entry may be.
#: Mirrors the GSI staleness bound (repro.aws.backend): ≥ any replica
#: propagation window the suite uses, so a cache hit is never staler
#: than a lagging replica read plus this bound.
CACHE_STALENESS_BOUND = 5.0


def resolve_read_cache(read_cache=None) -> str:
    """Normalise the read-cache knob: argument, else environment, else off.

    Returns the normalised spec text (``""`` = disabled).

    >>> resolve_read_cache("on")
    'on'
    >>> resolve_read_cache(False)
    ''
    >>> resolve_read_cache()  # with REPRO_READ_CACHE unset
    ''
    """
    if read_cache is None:
        read_cache = os.environ.get(READ_CACHE_ENV, "")
    if read_cache is True:
        return "on"
    if read_cache is False:
        return ""
    text = str(read_cache).strip().lower()
    if text in ("", "0", "off", "none", "false"):
        return ""
    return text


def build_read_cache(spec, clock: SimClock, meter: Meter):
    """Construct the authority a spec names, or ``None`` when disabled.

    Spec grammar: ``"1"``/``"on"`` for the defaults, a plain byte count
    for a custom capacity (``"65536"``), or comma-separated options
    (``"capacity=65536,staleness=2.5"``).
    """
    text = resolve_read_cache(spec)
    if not text:
        return None
    capacity = DEFAULT_CAPACITY
    staleness = CACHE_STALENESS_BOUND
    if text not in ("1", "on", "true", "auto"):
        if text.isdigit():
            capacity = int(text)
        else:
            for part in text.split(","):
                key, sep, value = part.partition("=")
                key = key.strip()
                if not sep:
                    raise ValueError(
                        f"malformed read-cache option {part!r} "
                        "(expected key=value)"
                    )
                if key in ("capacity", "cap"):
                    capacity = int(value)
                elif key in ("staleness", "ttl"):
                    staleness = float(value)
                else:
                    raise ValueError(f"unknown read-cache option {key!r}")
    return ReadCacheAuthority(
        clock, meter, capacity=capacity, staleness_bound=staleness
    )


def attrs_nbytes(attrs) -> int:
    """Node-memory estimate for one cached item's attribute map."""
    total = 0
    for name, values in attrs.items():
        total += len(name)
        total += sum(len(value) for value in values)
    return total


class ReadCacheAuthority:
    """The single cache-coherence authority fronting both backends.

    One instance per :class:`~repro.aws.account.AWSAccount` (constructed
    by ``build_read_cache`` when the knob is on). Holds item entries
    (point reads) and memoised ancestry-closure results (whole scatter
    phases) in one bounded LRU ring; every mutation and every coherence
    decision — drop, fence check, age check — happens under the
    authority's lock, so concurrent readers and writers always observe
    one total order of invalidations.
    """

    def __init__(
        self,
        clock: SimClock,
        meter: Meter,
        capacity: int = DEFAULT_CAPACITY,
        staleness_bound: float = CACHE_STALENESS_BOUND,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if staleness_bound < 0:
            raise ValueError(
                f"staleness bound must be >= 0, got {staleness_bound}"
            )
        self._clock = clock
        self._meter = meter
        self.capacity = capacity
        self.staleness_bound = staleness_bound
        self._lock = new_lock(name="elasticache")
        #: key -> (value, nbytes, cached_at, generation-at-fill). Item
        #: keys are ("item", name); memo keys are ("memo",) + caller key.
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._stored = 0
        #: The version fence: advanced by every invalidation, captured
        #: by readers before their backend reads, checked on every fill
        #: and every memo hit.
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.refused_fills = 0
        #: Greatest entry age (seconds) ever served — the observable the
        #: staleness-bound property pins (never exceeds the bound).
        self.max_served_age = 0.0

    # -- fences ----------------------------------------------------------

    @synchronized
    def fence(self) -> int:
        """The current invalidation generation. Capture *before* the
        backend read whose result a fill will carry; piggybacks on the
        consult round trip, so it is not metered separately."""
        return self._generation

    @property
    def generation(self) -> int:
        """Unlocked fence peek for observability (tests, benchmarks)."""
        return self._generation

    @synchronized
    def entry_count(self) -> int:
        return len(self._entries)

    @synchronized
    def stored_nbytes(self) -> int:
        return self._stored

    # -- item entries (point reads) --------------------------------------

    @synchronized
    def get_item(self, item_name: str):
        """Consult the cache for one provenance item.

        Returns ``(True, attrs)`` on a valid hit, ``(False, None)``
        otherwise. Entries older than the staleness bound are dropped
        and counted as misses.
        """
        value = self._get(("item", item_name))
        return (True, value) if value is not None else (False, None)

    @synchronized
    def put_item(self, item_name: str, attrs, fence: int) -> bool:
        """Fill one item entry, fenced against concurrent invalidation.

        ``fence`` must be the generation captured before the backend
        read that produced ``attrs``; if any write invalidated in
        between, the fill is refused (returns ``False``) — the entry
        could cache a value the backend no longer holds. Once admitted
        the entry stays valid until *its own* write-through invalidation
        or age-out (writes to other items do not disturb it).
        """
        return self._put(
            ("item", item_name),
            attrs,
            attrs_nbytes(attrs),
            fence,
            pin_generation=False,
        )

    @synchronized
    def invalidate(self, item_name: str) -> None:
        """Write-through invalidation for one item (every put/delete
        path calls this). Drops the cached entry and advances the
        generation, implicitly invalidating every memoised closure."""
        self._drop(("item", item_name))
        self._generation += 1
        self.invalidations += 1

    @synchronized
    def invalidate_many(self, item_names: Iterable[str]) -> None:
        """Batched write-through invalidation (the group-commit path)."""
        count = 0
        for item_name in item_names:
            self._drop(("item", item_name))
            count += 1
        if count:
            self._generation += 1
            self.invalidations += count

    # -- memoised ancestry closures --------------------------------------

    @synchronized
    def memo_get(self, key: tuple):
        """Consult a memoised scatter-phase result.

        Returns ``(True, value, fence)`` on a valid hit or
        ``(False, None, fence)`` on a miss, where ``fence`` is the
        current generation — captured here, before the caller's backend
        reads, for the eventual :meth:`memo_put`. A stored result is
        valid only while no invalidation has advanced the generation
        past its fill fence and its age is within the staleness bound.
        """
        value = self._get(("memo",) + key)
        if value is not None:
            return True, value, self._generation
        return False, None, self._generation

    @synchronized
    def memo_put(self, key: tuple, fence: int, value, nbytes: int) -> bool:
        """Store a scatter-phase result pinned to its version fence —
        the *next* invalidation anywhere supersedes it (a closure can
        depend on any item, so the authority assumes it depends on
        all of them)."""
        return self._put(("memo",) + key, value, nbytes, fence, pin_generation=True)

    # -- internals (lock held) -------------------------------------------

    def _get(self, key: tuple):
        self._meter.record_request(ELASTICACHE, "Get")
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, nbytes, cached_at, generation = entry
        age = self._clock.now - cached_at
        stale = age > self.staleness_bound or (
            generation is not None and generation != self._generation
        )
        if stale:
            # Expired past the declared bound, or (memo entries, which
            # pin their fill fence) superseded by an invalidation:
            # authoritative state may have moved; serve nothing older
            # than the contract allows.
            self._evict(key)
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.max_served_age = max(self.max_served_age, age)
        self._meter.record_transfer_out(ELASTICACHE, nbytes)
        return value

    def _put(
        self, key: tuple, value, nbytes: int, fence: int, pin_generation: bool
    ) -> bool:
        self._meter.record_request(ELASTICACHE, "Put")
        self._meter.record_transfer_in(ELASTICACHE, nbytes)
        if fence != self._generation:
            # A write invalidated between the reader's fence capture and
            # this fill: the value may predate that write. Refuse — the
            # authority validates, the reader just retries next time.
            self.refused_fills += 1
            return False
        if nbytes > self.capacity:
            self.refused_fills += 1
            return False
        self._drop(key)
        while self._stored + nbytes > self.capacity:
            oldest = next(iter(self._entries))
            self._evict(oldest)
            self.evictions += 1
        generation = self._generation if pin_generation else None
        self._entries[key] = (value, nbytes, self._clock.now, generation)
        self._stored += nbytes
        self._meter.adjust_stored(ELASTICACHE, nbytes)
        return True

    def _drop(self, key: tuple) -> None:
        if key in self._entries:
            self._evict(key)

    def _evict(self, key: tuple) -> None:
        _, nbytes, _, _ = self._entries.pop(key)
        self._stored -= nbytes
        self._meter.adjust_stored(ELASTICACHE, -nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReadCacheAuthority(entries={len(self._entries)}, "
            f"stored={self._stored}/{self.capacity}B, "
            f"hits={self.hits}, misses={self.misses}, "
            f"gen={self._generation})"
        )
