"""SimpleDB query languages (January 2009).

Two front-ends compile to one predicate representation:

* the original bracket **Query** language used by ``Query`` and
  ``QueryWithAttributes`` — the API the paper's architectures call::

      ['type' = 'proc'] intersection ['name' = 'blast']
      ['input' = 'bar:2' or 'input' = 'baz:1']
      not ['type' = 'file'] union ['version' > '0004']

* a **SELECT** subset (comparisons, AND/OR/NOT, parentheses, IN, LIKE
  with a trailing ``%``, BETWEEN, IS [NOT] NULL, ``every()``, LIMIT),
  matching the SELECT primitive §2.2 mentions.

Semantics follow 2009 SimpleDB:

* all values are strings and compare lexicographically — callers must
  zero-pad numbers, which the PASS serializer does for versions;
* a bracket predicate names exactly **one** attribute; ``and`` inside a
  bracket means a single attribute *value* satisfies every comparison
  (enabling range predicates), while cross-attribute conjunction is
  expressed with ``intersection``;
* multi-valued attributes match if *any* value matches (``every()`` in
  SELECT demands all values match);
* set operators ``union`` / ``intersection`` / ``not`` combine predicate
  result sets left-to-right.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import InvalidQueryExpression

#: An item is a mapping from attribute name to a tuple of string values.
ItemAttrs = Mapping[str, Sequence[str]]

_COMPARATORS: dict[str, Callable[[str, str], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "starts-with": lambda a, b: a.startswith(b),
    "does-not-start-with": lambda a, b: not a.startswith(b),
}


def quote_literal(value: str) -> str:
    """Render ``value`` as a quoted string literal for either language.

    Both the bracket Query language and SELECT escape an embedded
    apostrophe by doubling it (``'`` → ``''`` — see the tokenizer's
    string pattern). Every caller that interpolates user-controlled text
    (object paths, program names) into a query must route it through
    here, or a name like ``o'brien`` breaks the expression.
    """
    return "'" + value.replace("'", "''") + "'"


# ---------------------------------------------------------------------------
# Tokenizer (shared by both languages)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')          # 'quoted', '' escapes a quote
      | (?P<op><=|>=|!=|=|<|>)
      | (?P<punct>[\[\](),*])
      | (?P<word>[A-Za-z0-9_.:%$/-]+)
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'string' | 'op' | 'punct' | 'word'
    text: str


def tokenize(expression: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(expression):
        match = _TOKEN_RE.match(expression, pos)
        if match is None or match.end() == pos:
            remainder = expression[pos:].strip()
            if not remainder:
                break
            raise InvalidQueryExpression(
                f"cannot tokenize {remainder[:20]!r} in query {expression!r}"
            )
        pos = match.end()
        kind = match.lastgroup or "word"
        text = match.group(kind)
        if kind == "string":
            text = text[1:-1].replace("''", "'")
        tokens.append(Token(kind, text))
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    def peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise InvalidQueryExpression(f"unexpected end of query: {self._source!r}")
        self._index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text.lower() != text):
            raise InvalidQueryExpression(
                f"expected {text or kind!r}, got {token.text!r} in {self._source!r}"
            )
        return token

    def accept_word(self, *words: str) -> str | None:
        token = self.peek()
        if token is not None and token.kind == "word" and token.text.lower() in words:
            self._index += 1
            return token.text.lower()
        return None

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


# ---------------------------------------------------------------------------
# Predicate AST
# ---------------------------------------------------------------------------

class Node:
    """A compiled query node; evaluates an item to include/exclude."""

    def matches(self, attrs: ItemAttrs) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Node):
    """``attribute op value`` — true if any attribute value satisfies it."""

    attribute: str
    op: str
    value: str
    every: bool = False  # SELECT's every(attr): all values must satisfy

    def matches(self, attrs: ItemAttrs) -> bool:
        values = attrs.get(self.attribute)
        if not values:
            return False
        compare = _COMPARATORS[self.op]
        if self.every:
            return all(compare(v, self.value) for v in values)
        return any(compare(v, self.value) for v in values)


@dataclass(frozen=True)
class BracketPredicate(Node):
    """A 2009 ``[...]`` predicate over a single attribute.

    ``conjunctions`` is a list of OR-groups; each OR-group is a list of
    comparisons. The predicate holds if some single attribute value
    satisfies every OR-group (i.e. CNF over one value).
    """

    attribute: str
    conjunctions: tuple[tuple[Comparison, ...], ...]

    def matches(self, attrs: ItemAttrs) -> bool:
        values = attrs.get(self.attribute)
        if not values:
            return False
        for value in values:
            if all(
                any(_COMPARATORS[c.op](value, c.value) for c in group)
                for group in self.conjunctions
            ):
                return True
        return False


@dataclass(frozen=True)
class Null(Node):
    """``attribute is null`` / ``is not null`` (SELECT only)."""

    attribute: str
    negated: bool

    def matches(self, attrs: ItemAttrs) -> bool:
        present = bool(attrs.get(self.attribute))
        return present if self.negated else not present


@dataclass(frozen=True)
class Not(Node):
    operand: Node

    def matches(self, attrs: ItemAttrs) -> bool:
        return not self.operand.matches(attrs)


@dataclass(frozen=True)
class BoolOp(Node):
    """AND/OR (SELECT) or intersection/union (Query), left-associative."""

    op: str  # 'and' | 'or'
    left: Node
    right: Node

    def matches(self, attrs: ItemAttrs) -> bool:
        if self.op == "and":
            return self.left.matches(attrs) and self.right.matches(attrs)
        return self.left.matches(attrs) or self.right.matches(attrs)


@dataclass(frozen=True)
class MatchAll(Node):
    """The empty query expression: every item matches."""

    def matches(self, attrs: ItemAttrs) -> bool:
        return True


@dataclass(frozen=True)
class CompiledQuery:
    """A parsed query plus its result ordering."""

    predicate: Node
    sort_attribute: str | None = None
    sort_descending: bool = False

    def matches(self, attrs: ItemAttrs) -> bool:
        return self.predicate.matches(attrs)

    def sort_key(self, name: str, attrs: ItemAttrs) -> tuple:
        if self.sort_attribute is None:
            return (name,)
        values = attrs.get(self.sort_attribute) or ("",)
        return (min(values), name)


# ---------------------------------------------------------------------------
# Query-language parser (bracket syntax)
# ---------------------------------------------------------------------------

def parse_query(expression: str | None) -> CompiledQuery:
    """Parse a 2009 bracket Query expression; ``None``/empty matches all.

    >>> q = parse_query("['type' = 'file'] intersection not ['ver' > '2']")
    >>> q.matches({'type': ('file',), 'ver': ('1',)})
    True
    """
    if expression is None or not expression.strip():
        return CompiledQuery(MatchAll())
    stream = _TokenStream(tokenize(expression), expression)
    node = _parse_set_expression(stream)
    sort_attr: str | None = None
    descending = False
    if stream.accept_word("sort"):
        sort_attr = stream.next().text
        direction = stream.accept_word("asc", "desc")
        descending = direction == "desc"
    if not stream.exhausted:
        raise InvalidQueryExpression(
            f"trailing tokens after {stream.peek().text!r} in {expression!r}"
        )
    return CompiledQuery(node, sort_attr, descending)


def _parse_set_expression(stream: _TokenStream) -> Node:
    node = _parse_set_term(stream)
    while True:
        word = stream.accept_word("union", "intersection")
        if word is None:
            return node
        right = _parse_set_term(stream)
        node = BoolOp("or" if word == "union" else "and", node, right)


def _parse_set_term(stream: _TokenStream) -> Node:
    if stream.accept_word("not"):
        return Not(_parse_set_term(stream))
    token = stream.peek()
    if token is not None and token.kind == "punct" and token.text == "(":
        stream.next()
        node = _parse_set_expression(stream)
        closing = stream.next()
        if closing.kind != "punct" or closing.text != ")":
            raise InvalidQueryExpression("expected ')' closing grouped expression")
        return node
    return _parse_bracket(stream)


def _parse_bracket(stream: _TokenStream) -> Node:
    opening = stream.next()
    if opening.kind != "punct" or opening.text != "[":
        raise InvalidQueryExpression(
            f"expected '[' to open a predicate, got {opening.text!r}"
        )
    attribute: str | None = None
    groups: list[tuple[Comparison, ...]] = []
    current_or: list[Comparison] = []
    while True:
        attr_token = stream.next()
        if attr_token.kind not in ("string", "word"):
            raise InvalidQueryExpression(
                f"expected attribute name, got {attr_token.text!r}"
            )
        op_token = stream.next()
        if op_token.kind == "op":
            op = op_token.text
        elif op_token.kind == "word" and op_token.text.lower() in (
            "starts-with",
            "does-not-start-with",
        ):
            op = op_token.text.lower()
        else:
            raise InvalidQueryExpression(f"unknown comparator {op_token.text!r}")
        value_token = stream.next()
        if value_token.kind not in ("string", "word"):
            raise InvalidQueryExpression(
                f"expected comparison value, got {value_token.text!r}"
            )
        if attribute is None:
            attribute = attr_token.text
        elif attribute != attr_token.text:
            raise InvalidQueryExpression(
                "a bracket predicate must reference a single attribute "
                f"(saw {attribute!r} and {attr_token.text!r}); "
                "use 'intersection' across attributes"
            )
        current_or.append(Comparison(attr_token.text, op, value_token.text))
        connective = stream.next()
        if connective.kind == "punct" and connective.text == "]":
            break
        if connective.kind == "word" and connective.text.lower() == "or":
            continue
        if connective.kind == "word" and connective.text.lower() == "and":
            groups.append(tuple(current_or))
            current_or = []
            continue
        raise InvalidQueryExpression(
            f"expected 'and', 'or' or ']' in predicate, got {connective.text!r}"
        )
    groups.append(tuple(current_or))
    assert attribute is not None
    return BracketPredicate(attribute, tuple(groups))


# ---------------------------------------------------------------------------
# SELECT parser
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT: projection, domain, predicate, order, limit."""

    projection: tuple[str, ...]  # ('*',), ('itemName()',), ('count(*)',) or attrs
    domain: str
    query: CompiledQuery
    limit: int | None

    @property
    def is_count(self) -> bool:
        return self.projection == ("count(*)",)


def parse_select(statement: str) -> SelectStatement:
    """Parse a SimpleDB SELECT statement (2009 subset).

    >>> s = parse_select("select * from prov where type = 'file' limit 10")
    >>> s.domain, s.limit
    ('prov', 10)
    """
    stream = _TokenStream(tokenize(statement), statement)
    if stream.accept_word("select") is None:
        raise InvalidQueryExpression(f"not a SELECT statement: {statement!r}")
    projection = _parse_projection(stream)
    if stream.accept_word("from") is None:
        raise InvalidQueryExpression("SELECT requires a FROM clause")
    domain = stream.next().text
    predicate: Node = MatchAll()
    if stream.accept_word("where"):
        predicate = _parse_condition(stream)
    sort_attr, descending = None, False
    if stream.accept_word("order"):
        if stream.accept_word("by") is None:
            raise InvalidQueryExpression("expected BY after ORDER")
        sort_attr = stream.next().text
        direction = stream.accept_word("asc", "desc")
        descending = direction == "desc"
    limit = None
    if stream.accept_word("limit"):
        limit_token = stream.next()
        try:
            limit = int(limit_token.text)
        except ValueError:
            raise InvalidQueryExpression(f"bad LIMIT {limit_token.text!r}") from None
    if not stream.exhausted:
        raise InvalidQueryExpression(
            f"trailing tokens after {stream.peek().text!r} in {statement!r}"
        )
    return SelectStatement(
        projection=projection,
        domain=domain,
        query=CompiledQuery(predicate, sort_attr, descending),
        limit=limit,
    )


def _parse_projection(stream: _TokenStream) -> tuple[str, ...]:
    token = stream.next()
    if token.kind == "punct" and token.text == "*":
        return ("*",)
    if token.kind == "word" and token.text.lower() == "count":
        stream.expect("punct", "(")
        star = stream.next()
        if star.kind != "punct" or star.text != "*":
            raise InvalidQueryExpression("only count(*) is supported")
        _expect_close(stream)
        return ("count(*)",)
    if token.kind == "word" and token.text == "itemName":
        stream.expect("punct", "(")
        _expect_close(stream)
        names = ["itemName()"]
    else:
        names = [token.text]
    while True:
        comma = stream.peek()
        if comma is None or comma.kind != "punct" or comma.text != ",":
            return tuple(names)
        stream.next()
        names.append(stream.next().text)


def _expect_close(stream: _TokenStream) -> None:
    token = stream.next()
    if token.kind != "punct" or token.text != ")":
        raise InvalidQueryExpression(f"expected ')', got {token.text!r}")


def _parse_condition(stream: _TokenStream) -> Node:
    node = _parse_and(stream)
    while stream.accept_word("or"):
        node = BoolOp("or", node, _parse_and(stream))
    return node


def _parse_and(stream: _TokenStream) -> Node:
    node = _parse_unary(stream)
    while stream.accept_word("and"):
        node = BoolOp("and", node, _parse_unary(stream))
    return node


def _parse_unary(stream: _TokenStream) -> Node:
    if stream.accept_word("not"):
        return Not(_parse_unary(stream))
    token = stream.peek()
    if token is not None and token.kind == "punct" and token.text == "(":
        stream.next()
        node = _parse_condition(stream)
        _expect_close(stream)
        return node
    return _parse_simple_condition(stream)


def _parse_simple_condition(stream: _TokenStream) -> Node:
    every = False
    attr_token = stream.next()
    if attr_token.kind == "word" and attr_token.text.lower() == "every":
        stream.expect("punct", "(")
        attr_token = stream.next()
        _expect_close(stream)
        every = True
    if attr_token.kind not in ("word", "string"):
        raise InvalidQueryExpression(f"expected attribute, got {attr_token.text!r}")
    attribute = attr_token.text

    if stream.accept_word("is"):
        negated = bool(stream.accept_word("not"))
        if stream.accept_word("null") is None:
            raise InvalidQueryExpression("expected NULL after IS [NOT]")
        return Null(attribute, negated)
    if stream.accept_word("in"):
        stream.expect("punct", "(")
        options: list[Node] = []
        while True:
            value = stream.next()
            options.append(Comparison(attribute, "=", value.text, every))
            sep = stream.next()
            if sep.kind == "punct" and sep.text == ")":
                break
            if sep.kind != "punct" or sep.text != ",":
                raise InvalidQueryExpression("expected ',' or ')' in IN list")
        node = options[0]
        for option in options[1:]:
            node = BoolOp("or", node, option)
        return node
    if stream.accept_word("between"):
        low = stream.next().text
        if stream.accept_word("and") is None:
            raise InvalidQueryExpression("expected AND in BETWEEN")
        high = stream.next().text
        return BoolOp(
            "and",
            Comparison(attribute, ">=", low, every),
            Comparison(attribute, "<=", high, every),
        )
    if stream.accept_word("like"):
        pattern = stream.next().text
        if not pattern.endswith("%") or "%" in pattern[:-1]:
            raise InvalidQueryExpression(
                "LIKE supports only a single trailing %% wildcard"
            )
        return Comparison(attribute, "starts-with", pattern[:-1], every)

    op_token = stream.next()
    if op_token.kind != "op":
        raise InvalidQueryExpression(f"unknown comparator {op_token.text!r}")
    value_token = stream.next()
    return Comparison(attribute, op_token.text, value_token.text, every)


# ---------------------------------------------------------------------------
# Execution helper shared by the SimpleDB service
# ---------------------------------------------------------------------------

def run_query(
    items: Iterable[tuple[str, ItemAttrs]],
    query: CompiledQuery,
) -> list[tuple[str, ItemAttrs]]:
    """Filter and order (name, attrs) pairs according to a compiled query."""
    matched = [(name, attrs) for name, attrs in items if query.matches(attrs)]
    matched.sort(key=lambda pair: query.sort_key(*pair))
    if query.sort_descending:
        matched.reverse()
    return matched
