"""The eventual-consistency engine shared by S3, SimpleDB, and SQS.

AWS circa 2009 promised only *eventual* consistency (paper §2): a GET
right after a PUT may see the old object; a SimpleDB query right after an
insert may miss the item; an SQS receive samples a subset of hosts. This
module models all of that with one mechanism:

* A :class:`ReplicaSet` holds ``n`` replica views of a keyspace. Writes
  are applied immediately to an *authoritative* log (total order,
  last-writer-wins, as §2.1 describes for concurrent PUTs) and propagate
  to each replica after an independent random delay drawn from the
  configured window.
* Reads choose a replica uniformly at random and see only writes that
  have reached it — so stale reads happen exactly when the paper says
  they can, and letting the simulated clock drain its event queue
  ("quiescing") guarantees convergence, which is the "eventual" half of
  the contract.

Setting the delay window to zero collapses the model to strong
consistency, which unit tests use when consistency races are not the
behaviour under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generic, Iterator, TypeVar

from repro.clock import SimClock

V = TypeVar("V")

#: A tombstone marker distinct from any payload (deletes propagate like writes).
_TOMBSTONE = object()


@dataclass(frozen=True)
class DelayModel:
    """Propagation delay distribution for replica updates.

    Each (write, replica) pair draws an independent delay uniformly from
    ``[min_delay, max_delay]``. ``immediate_fraction`` of writes reach a
    given replica with zero delay, modelling the common case in which a
    read-after-write *does* succeed — the paper's races are possible, not
    certain.
    """

    min_delay: float = 0.0
    max_delay: float = 0.0
    immediate_fraction: float = 0.0

    def sample(self, rng: random.Random) -> float:
        if self.max_delay <= 0:
            return 0.0
        if self.immediate_fraction and rng.random() < self.immediate_fraction:
            return 0.0
        return rng.uniform(self.min_delay, self.max_delay)

    @property
    def is_strong(self) -> bool:
        return self.max_delay <= 0


#: Strongly consistent delay model (propagation is instantaneous).
STRONG = DelayModel()


class ReplicaSet(Generic[V]):
    """An eventually consistent, replicated key-value space.

    Values are opaque to the replica set; services store object records,
    item attribute maps, or queue entries. ``V`` must be treated as
    immutable by callers — updates replace the whole value, mirroring how
    S3 PUT replaces whole objects and SimpleDB replicates item state.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        rng: random.Random,
        n_replicas: int = 3,
        delays: DelayModel = STRONG,
    ):
        if n_replicas < 1:
            raise ValueError(f"need at least one replica, got {n_replicas}")
        self.name = name
        self._clock = clock
        self._rng = rng
        self._delays = delays
        # The authoritative view: applied in write order, immediately.
        self._authority: dict[str, object] = {}
        self._version = 0
        # Per-replica views: key -> (version, value).
        self._replicas: list[dict[str, tuple[int, object]]] = [
            {} for _ in range(n_replicas)
        ]
        self.stale_reads = 0  # reads that returned a non-authoritative value
        #: Replica installs scheduled on the clock but not yet applied —
        #: the observable replication lag (e.g. a GSI's backlog).
        self.pending_installs = 0
        # Outstanding installs bucketed by the clock time their write
        # was issued (install delays are random, so completions arrive
        # out of order — a single "busy since" timestamp would overstate
        # the lag under a steady write stream).
        self._pending_issue_times: dict[float, int] = {}

    # -- writing ----------------------------------------------------------

    def write(self, key: str, value: V) -> int:
        """Apply a write authoritatively and schedule replica propagation."""
        return self._apply(key, value)

    def delete(self, key: str) -> int:
        """Delete a key; the tombstone propagates like any other write."""
        return self._apply(key, _TOMBSTONE)

    def _apply(self, key: str, value: object) -> int:
        self._version += 1
        version = self._version
        if value is _TOMBSTONE:
            self._authority.pop(key, None)
        else:
            self._authority[key] = value
        for replica in self._replicas:
            delay = self._delays.sample(self._rng)
            if delay <= 0:
                self._install(replica, key, version, value)
            else:
                issued_at = self._clock.now
                self.pending_installs += 1
                self._pending_issue_times[issued_at] = (
                    self._pending_issue_times.get(issued_at, 0) + 1
                )
                self._clock.call_after(
                    delay,
                    lambda r=replica, k=key, ver=version, v=value, t=issued_at: (
                        self._install_pending(r, k, ver, v, t)
                    ),
                )
        return version

    def _install_pending(
        self, replica: dict[str, tuple[int, object]], key: str, version: int,
        value: object, issued_at: float,
    ) -> None:
        self._install(replica, key, version, value)
        self.pending_installs -= 1
        remaining = self._pending_issue_times[issued_at] - 1
        if remaining:
            self._pending_issue_times[issued_at] = remaining
        else:
            del self._pending_issue_times[issued_at]

    @staticmethod
    def _install(
        replica: dict[str, tuple[int, object]], key: str, version: int, value: object
    ) -> None:
        # Last-writer-wins by authoritative version: a delayed older write
        # never clobbers a newer one that already arrived.
        current = replica.get(key)
        if current is not None and current[0] >= version:
            return
        replica[key] = (version, value)

    # -- reading ----------------------------------------------------------

    def _pick_replica(self) -> dict[str, tuple[int, object]]:
        return self._rng.choice(self._replicas)

    def read(self, key: str) -> V | None:
        """Read from a random replica; ``None`` if unknown (or deleted) there."""
        replica = self._pick_replica()
        entry = replica.get(key)
        value = None if entry is None or entry[1] is _TOMBSTONE else entry[1]
        if value is not self._authority.get(key):
            self.stale_reads += 1
        return value  # type: ignore[return-value]

    def read_authoritative(self, key: str) -> V | None:
        """Bypass replication — test/oracle use only."""
        return self._authority.get(key)  # type: ignore[return-value]

    def contains_authoritative(self, key: str) -> bool:
        return key in self._authority

    def keys_snapshot(self) -> list[str]:
        """Sorted keys visible on one randomly chosen replica.

        This is the view a LIST or a SimpleDB query runs against: recent
        inserts may be missing and recent deletes may still show.
        """
        replica = self._pick_replica()
        return sorted(k for k, (_, v) in replica.items() if v is not _TOMBSTONE)

    def items_snapshot(self) -> Iterator[tuple[str, V]]:
        """(key, value) pairs visible on one randomly chosen replica."""
        replica = self._pick_replica()
        for key in sorted(replica):
            version_value = replica[key]
            if version_value[1] is not _TOMBSTONE:
                yield key, version_value[1]  # type: ignore[misc]

    def authoritative_keys(self) -> list[str]:
        return sorted(self._authority)

    def authoritative_items(self) -> Iterator[tuple[str, V]]:
        for key in sorted(self._authority):
            yield key, self._authority[key]  # type: ignore[misc]

    # -- convergence ------------------------------------------------------

    def lag_seconds(self) -> float:
        """How long the oldest still-propagating write has been in flight.

        ``0.0`` when every scheduled install has landed. This is the
        replication-lag signal a client can act on (the DynamoDB-style
        backend's GSI staleness bound reads it); it measures *pending*
        work, so a quiesced replica set always reports zero, and under
        a steady write stream it is bounded by the delay window (the
        oldest outstanding install, not the length of the busy period).
        The ``min`` walks one bucket per distinct issue instant still
        outstanding — bounded by the delay window, not by history.
        """
        if not self._pending_issue_times:
            return 0.0
        return max(0.0, self._clock.now - min(self._pending_issue_times))

    def is_converged(self) -> bool:
        """True when every replica equals the authoritative view."""
        for replica in self._replicas:
            visible = {k: v for k, (_, v) in replica.items() if v is not _TOMBSTONE}
            if visible != self._authority:
                return False
        return True

    def __len__(self) -> int:
        """Number of keys in the authoritative view."""
        return len(self._authority)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplicaSet({self.name!r}, keys={len(self._authority)}, "
            f"replicas={len(self._replicas)}, converged={self.is_converged()})"
        )


def make_rng_family(seed: int) -> Callable[[str], random.Random]:
    """Create independent, reproducible RNG streams keyed by label.

    Each simulated service draws replica choices and delays from its own
    stream so adding requests to one service never perturbs another —
    essential for comparing architecture runs under a fixed seed.
    """

    def derive(label: str) -> random.Random:
        return random.Random(f"{seed}:{label}")

    return derive
