"""Simulated Amazon SQS (January 2009 semantics).

Implements the distributed-queue behaviours the A3 write-ahead-log
protocol depends on (paper §2.3):

* queues identified by URL; ``SendMessage`` with an **8 KB** body limit
  (which is why large data goes to a temporary S3 object with only a
  pointer on the queue);
* messages are spread across internal **hosts**; ``ReceiveMessage``
  *samples* a subset of hosts and returns at most 10 visible messages
  from them — so a single receive can miss messages that exist, and the
  commit daemon must keep receiving until a transaction is complete;
* a **visibility timeout**: delivered messages are hidden from other
  consumers until the timeout lapses or the consumer deletes them — SQS's
  at-least-once contract and de-facto distributed lock (paper footnote 2);
* ``DeleteMessage`` takes the receipt handle from the delivering receive;
* ``GetQueueAttributes:ApproximateNumberOfMessages`` estimates the queue
  length from a host sample (approximate under eventual consistency);
* messages older than **4 days** are deleted automatically — the WAL
  garbage-collection window §4.3 relies on;
* best-effort ordering: no FIFO guarantee whatsoever.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro import errors, units
from repro.aws import billing
from repro.aws.faults import RequestFaults
from repro.clock import SimClock
from repro.concurrency import new_lock, synchronized

DEFAULT_VISIBILITY_TIMEOUT = 30.0
DEFAULT_HOST_COUNT = 8
#: Fraction of hosts a ReceiveMessage samples.
DEFAULT_SAMPLE_FRACTION = 0.75


@dataclass
class _StoredMessage:
    """Internal queue entry (mutable: visibility changes on receive)."""

    message_id: str
    body: str
    enqueued_at: float
    host: int
    visible_at: float = 0.0
    receive_count: int = 0
    receipt_serial: int = 0  # invalidates older receipt handles


@dataclass(frozen=True)
class ReceivedMessage:
    """A message as handed to a consumer."""

    message_id: str
    body: str
    receipt_handle: str
    receive_count: int
    enqueued_at: float


@dataclass
class _Queue:
    url: str
    name: str
    visibility_timeout: float
    hosts: list[dict[str, _StoredMessage]] = field(default_factory=list)


class SQSService:
    """The simulated SQS endpoint for one AWS account."""

    def __init__(
        self,
        clock: SimClock,
        rng: random.Random,
        meter: billing.Meter,
        faults: RequestFaults | None = None,
        host_count: int = DEFAULT_HOST_COUNT,
        sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
        retention_seconds: float = units.SQS_RETENTION_SECONDS,
    ):
        if host_count < 1:
            raise ValueError(f"host_count must be >= 1, got {host_count}")
        if not (0.0 < sample_fraction <= 1.0):
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self._clock = clock
        self._rng = rng
        self._meter = meter
        self._faults = faults or RequestFaults()
        self._host_count = host_count
        self._sample_fraction = sample_fraction
        self._retention = retention_seconds
        # Coarse service lock (repro/concurrency.py): queue state and
        # the shared meter must mutate atomically once the commit daemon
        # and a concurrent scatter-gather fleet share one endpoint.
        self._lock = new_lock()
        self._queues: dict[str, _Queue] = {}
        self._message_ids = itertools.count(1)
        self._receipt_serials = itertools.count(1)
        self.messages_expired = 0

    # -- queue management ---------------------------------------------------

    @synchronized
    def create_queue(
        self, name: str, visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT
    ) -> str:
        """Create a queue and return its URL. Idempotent for same timeout."""
        self._request("CreateQueue")
        url = f"sqs://queues/{name}"
        existing = self._queues.get(url)
        if existing is not None:
            if existing.visibility_timeout != visibility_timeout:
                raise errors.QueueNameExists(
                    f"queue {name!r} exists with a different visibility timeout"
                )
            return url
        self._queues[url] = _Queue(
            url=url,
            name=name,
            visibility_timeout=visibility_timeout,
            hosts=[{} for _ in range(self._host_count)],
        )
        return url

    @synchronized
    def delete_queue(self, url: str) -> None:
        self._request("DeleteQueue")
        queue = self._queues.pop(url, None)
        if queue is not None:
            freed = sum(
                len(m.body.encode()) for host in queue.hosts for m in host.values()
            )
            self._meter.adjust_stored(billing.SQS, -freed)

    @synchronized
    def list_queues(self) -> list[str]:
        self._request("ListQueues")
        return sorted(self._queues)

    def _queue(self, url: str) -> _Queue:
        queue = self._queues.get(url)
        if queue is None:
            raise errors.NoSuchQueue(url)
        self._expire_old_messages(queue)
        return queue

    # -- messaging -------------------------------------------------------------

    @synchronized
    def send_message(self, url: str, body: str) -> str:
        """Enqueue a message (≤ 8 KB, Unicode text) on a random host."""
        self._request("SendMessage")
        if not isinstance(body, str):
            raise errors.InvalidMessageContents(
                f"SQS bodies are Unicode text, got {type(body).__name__}"
            )
        encoded = body.encode("utf-8")
        if len(encoded) > units.SQS_MAX_MESSAGE_SIZE:
            raise errors.MessageTooLong(
                f"{len(encoded)} bytes exceeds the "
                f"{units.SQS_MAX_MESSAGE_SIZE} byte message limit"
            )
        queue = self._queue(url)
        message = _StoredMessage(
            message_id=f"msg-{next(self._message_ids):08d}",
            body=body,
            enqueued_at=self._clock.now,
            host=self._rng.randrange(len(queue.hosts)),
            visible_at=self._clock.now,
        )
        queue.hosts[message.host][message.message_id] = message
        self._meter.record_transfer_in(billing.SQS, len(encoded))
        self._meter.adjust_stored(billing.SQS, len(encoded))
        return message.message_id

    @synchronized
    def send_message_batch(self, url: str, bodies: list[str]) -> list[str]:
        """Enqueue up to 10 messages in one metered round trip.

        Entries are validated before anything enqueues (all-or-nothing
        for malformed input), then each body lands exactly as a single
        :meth:`send_message` would — its own message id, its own random
        host. Returns the message ids in entry order.
        """
        self._request("SendMessageBatch")
        self._check_batch_entries("SendMessageBatch", bodies)
        encoded_bodies = []
        for body in bodies:
            if not isinstance(body, str):
                raise errors.InvalidMessageContents(
                    f"SQS bodies are Unicode text, got {type(body).__name__}"
                )
            encoded = body.encode("utf-8")
            if len(encoded) > units.SQS_MAX_MESSAGE_SIZE:
                raise errors.MessageTooLong(
                    f"{len(encoded)} bytes exceeds the "
                    f"{units.SQS_MAX_MESSAGE_SIZE} byte message limit"
                )
            encoded_bodies.append(encoded)
        queue = self._queue(url)
        message_ids = []
        for body in bodies:
            message = _StoredMessage(
                message_id=f"msg-{next(self._message_ids):08d}",
                body=body,
                enqueued_at=self._clock.now,
                host=self._rng.randrange(len(queue.hosts)),
                visible_at=self._clock.now,
            )
            queue.hosts[message.host][message.message_id] = message
            message_ids.append(message.message_id)
        total = sum(len(encoded) for encoded in encoded_bodies)
        self._meter.record_transfer_in(billing.SQS, total)
        self._meter.adjust_stored(billing.SQS, total)
        return message_ids

    @synchronized
    def receive_message(
        self,
        url: str,
        max_messages: int = 1,
        visibility_timeout: float | None = None,
    ) -> list[ReceivedMessage]:
        """Receive up to 10 visible messages from a *sample* of hosts.

        Messages returned become invisible to other consumers until the
        visibility timeout expires; consumers must DeleteMessage before
        then or the message reappears (at-least-once delivery).
        """
        self._request("ReceiveMessage")
        if not (1 <= max_messages <= units.SQS_MAX_RECEIVE_BATCH):
            raise ValueError(
                f"max_messages must be in [1, {units.SQS_MAX_RECEIVE_BATCH}], "
                f"got {max_messages}"
            )
        queue = self._queue(url)
        timeout = (
            queue.visibility_timeout if visibility_timeout is None else visibility_timeout
        )
        now = self._clock.now
        delivered: list[ReceivedMessage] = []
        for host_index in self._sample_hosts(len(queue.hosts)):
            # Random within-host order too: a deterministic scan plus the
            # 10-message cap would permanently starve late entries.
            candidates = list(queue.hosts[host_index].values())
            self._rng.shuffle(candidates)
            for message in candidates:
                if len(delivered) >= max_messages:
                    break
                if message.visible_at > now:
                    continue
                message.visible_at = now + timeout
                message.receive_count += 1
                message.receipt_serial = next(self._receipt_serials)
                handle = f"{message.message_id}#{message.receipt_serial}"
                delivered.append(
                    ReceivedMessage(
                        message_id=message.message_id,
                        body=message.body,
                        receipt_handle=handle,
                        receive_count=message.receive_count,
                        enqueued_at=message.enqueued_at,
                    )
                )
            if len(delivered) >= max_messages:
                break
        self._meter.record_transfer_out(
            billing.SQS, sum(len(m.body.encode()) for m in delivered)
        )
        return delivered

    @synchronized
    def delete_message(self, url: str, receipt_handle: str) -> None:
        """Delete a message by receipt handle.

        Deleting an already-deleted message succeeds (idempotent); a
        handle superseded by a later receive is rejected, modelling the
        lock-like semantics of the visibility timeout.
        """
        self._request("DeleteMessage")
        queue = self._queue(url)
        self._delete_by_handle(queue, receipt_handle)

    @synchronized
    def delete_message_batch(self, url: str, receipt_handles: list[str]) -> list[str]:
        """Delete up to 10 messages in one metered round trip.

        Mirrors the real DeleteMessageBatch partial-success contract:
        entries succeed or fail independently. A malformed or superseded
        handle fails its entry; an already-deleted message succeeds,
        exactly as in :meth:`delete_message`. Returns the failed handles
        (empty on full success) instead of raising.
        """
        self._request("DeleteMessageBatch")
        self._check_batch_entries("DeleteMessageBatch", receipt_handles)
        queue = self._queue(url)
        failed = []
        for receipt_handle in receipt_handles:
            try:
                self._delete_by_handle(queue, receipt_handle)
            except errors.ReceiptHandleInvalid:
                failed.append(receipt_handle)
        return failed

    def _delete_by_handle(self, queue: _Queue, receipt_handle: str) -> None:
        try:
            message_id, serial_text = receipt_handle.rsplit("#", 1)
            serial = int(serial_text)
        except ValueError:
            raise errors.ReceiptHandleInvalid(receipt_handle) from None
        for host in queue.hosts:
            message = host.get(message_id)
            if message is None:
                continue
            if message.receipt_serial != serial:
                raise errors.ReceiptHandleInvalid(
                    f"{receipt_handle}: superseded by a newer receive"
                )
            del host[message_id]
            self._meter.adjust_stored(billing.SQS, -len(message.body.encode()))
            return
        # Unknown message id: already deleted; SQS treats this as success.

    @synchronized
    def change_message_visibility(
        self, url: str, receipt_handle: str, visibility_timeout: float
    ) -> None:
        """Adjust an in-flight message's visibility (real SQS API).

        A consumer that received a message but cannot process it yet can
        release it early (timeout 0) instead of holding the lock until
        the original timeout — the commit daemon uses this to hand back
        transactions it must defer.
        """
        self._request("ChangeMessageVisibility")
        queue = self._queue(url)
        try:
            message_id, serial_text = receipt_handle.rsplit("#", 1)
            serial = int(serial_text)
        except ValueError:
            raise errors.ReceiptHandleInvalid(receipt_handle) from None
        for host in queue.hosts:
            message = host.get(message_id)
            if message is None:
                continue
            if message.receipt_serial != serial:
                raise errors.ReceiptHandleInvalid(
                    f"{receipt_handle}: superseded by a newer receive"
                )
            message.visible_at = self._clock.now + max(0.0, visibility_timeout)
            return
        # Already deleted: treated as success, like DeleteMessage.

    @synchronized
    def approximate_number_of_messages(self, url: str) -> int:
        """GetQueueAttributes:ApproximateNumberOfMessages.

        Counts visible messages on a host sample and scales up — an
        *approximation*, exactly as §2.3 warns. The commit daemon uses
        this only as a trigger threshold, never for correctness.
        """
        self._request("GetQueueAttributes")
        queue = self._queue(url)
        now = self._clock.now
        sampled = self._sample_hosts(len(queue.hosts))
        visible = sum(
            1
            for host_index in sampled
            for message in queue.hosts[host_index].values()
            if message.visible_at <= now
        )
        if not sampled:
            return 0
        return round(visible * len(queue.hosts) / len(sampled))

    # -- oracle helpers (tests only) ----------------------------------------------

    @synchronized
    def exact_message_count(self, url: str) -> int:
        """True total (visible + in-flight) message count; test oracle."""
        queue = self._queue(url)
        return sum(len(host) for host in queue.hosts)

    @synchronized
    def exact_visible_count(self, url: str) -> int:
        queue = self._queue(url)
        now = self._clock.now
        return sum(
            1
            for host in queue.hosts
            for message in host.values()
            if message.visible_at <= now
        )

    # -- internals -------------------------------------------------------------------

    @staticmethod
    def _check_batch_entries(op: str, entries: list) -> None:
        if not entries:
            raise errors.EmptyBatchRequest(f"{op} requires entries")
        if len(entries) > units.SQS_MAX_BATCH_ENTRIES:
            raise errors.TooManyEntriesInBatchRequest(
                f"{len(entries)} entries in one {op} (limit "
                f"{units.SQS_MAX_BATCH_ENTRIES})"
            )

    def _sample_hosts(self, n_hosts: int) -> list[int]:
        # Random order as well as random membership: a fixed scan order
        # plus the 10-message batch limit would starve messages parked
        # on late hosts.
        k = max(1, round(n_hosts * self._sample_fraction))
        return self._rng.sample(range(n_hosts), k)

    def _expire_old_messages(self, queue: _Queue) -> None:
        if self._retention <= 0:
            return
        cutoff = self._clock.now - self._retention
        for host in queue.hosts:
            expired = [
                message_id
                for message_id, message in host.items()
                if message.enqueued_at < cutoff
            ]
            for message_id in expired:
                message = host.pop(message_id)
                self._meter.adjust_stored(billing.SQS, -len(message.body.encode()))
                self.messages_expired += 1

    def _request(self, op: str) -> None:
        self._faults.before_request(billing.SQS, op)
        self._meter.record_request(billing.SQS, op)
