"""One AWS account wiring together clock, services, metering, and faults.

:class:`AWSAccount` is the root object examples and tests construct. It
owns the simulated clock, a seeded RNG family (one independent stream per
service, so runs are reproducible and services do not perturb each
other), the billing meter, and the three services.

``ConsistencyConfig`` chooses how adversarial the cloud is:

* ``ConsistencyConfig.strong()`` — replication is instantaneous; used by
  unit tests that are not about consistency races;
* ``ConsistencyConfig.eventual()`` — the paper's world: replica
  propagation takes up to ``window`` simulated seconds and SQS receives
  sample a subset of hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aws.billing import Meter, PriceBook
from repro.aws.consistency import DelayModel, make_rng_family
from repro.aws.dynamo import DynamoDBService
from repro.aws.elasticache import build_read_cache
from repro.aws.faults import RequestFaults
from repro.aws.s3 import S3Service
from repro.aws.simpledb import SimpleDBService
from repro.aws.sqs import SQSService
from repro.clock import SimClock


@dataclass(frozen=True)
class ConsistencyConfig:
    """How eventually consistent the simulated cloud is."""

    window: float = 0.0            # max replica propagation delay (seconds)
    immediate_fraction: float = 0.5  # writes that land instantly anyway
    n_replicas: int = 3
    sqs_hosts: int = 8
    sqs_sample_fraction: float = 0.75

    @classmethod
    def strong(cls) -> "ConsistencyConfig":
        """Instantaneous replication; SQS still samples all hosts."""
        return cls(window=0.0, n_replicas=1, sqs_sample_fraction=1.0)

    @classmethod
    def eventual(
        cls, window: float = 2.0, immediate_fraction: float = 0.5
    ) -> "ConsistencyConfig":
        """The adversarial model used for the paper's consistency races."""
        return cls(window=window, immediate_fraction=immediate_fraction)

    def delay_model(self) -> DelayModel:
        return DelayModel(
            min_delay=0.0,
            max_delay=self.window,
            immediate_fraction=self.immediate_fraction,
        )


class AWSAccount:
    """A simulated AWS account: S3 + SimpleDB + SQS + billing + clock."""

    def __init__(
        self,
        seed: int = 0,
        consistency: ConsistencyConfig | None = None,
        prices: PriceBook | None = None,
        ddb_indexes: str | tuple | None = None,
        read_cache: str | bool | int | None = None,
    ):
        """``ddb_indexes`` declares the global secondary indexes the
        DynamoDB-style provenance backend provisions on every shard
        table (a spec string like ``"name,input"``, ready
        :class:`~repro.aws.dynamo.IndexSpec` objects, or ``None`` for
        the ``REPRO_DDB_INDEXES`` environment default — no indexes when
        that is unset). ``read_cache`` enables the ElastiCache-style
        provenance read-cache tier (:mod:`repro.aws.elasticache`):
        ``"on"``/``True`` for the defaults, a capacity/option spec like
        ``"capacity=65536,staleness=2.5"``, ``None`` for the
        ``REPRO_READ_CACHE`` environment default, or ``""``/``"off"``/
        ``False`` for no cache — the default, byte-identical on the
        meter to a build without the cache tier."""
        self.consistency = consistency or ConsistencyConfig.strong()
        self.clock = SimClock()
        self.meter = Meter(self.clock)
        self.prices = prices or PriceBook()
        self.request_faults = RequestFaults()
        rng_for = make_rng_family(seed)
        delays = self.consistency.delay_model()
        self.s3 = S3Service(
            self.clock,
            rng_for("s3"),
            self.meter,
            faults=self.request_faults,
            delays=delays,
            n_replicas=self.consistency.n_replicas,
        )
        self.simpledb = SimpleDBService(
            self.clock,
            rng_for("simpledb"),
            self.meter,
            faults=self.request_faults,
            delays=delays,
            n_replicas=self.consistency.n_replicas,
        )
        self.sqs = SQSService(
            self.clock,
            rng_for("sqs"),
            self.meter,
            faults=self.request_faults,
            host_count=self.consistency.sqs_hosts,
            sample_fraction=self.consistency.sqs_sample_fraction,
        )
        # The DynamoDB-style provenance store (heterogeneous placement);
        # its own RNG stream so adding it never perturbs the 2009 trio.
        self.dynamodb = DynamoDBService(
            self.clock,
            rng_for("dynamodb"),
            self.meter,
            faults=self.request_faults,
            delays=delays,
            n_replicas=self.consistency.n_replicas,
        )
        self._ddb_indexes = ddb_indexes
        self._provenance_backends = None
        #: The read-cache authority fronting the provenance backends, or
        #: ``None`` when the tier is off (the default): consumers gate
        #: every cache touch on this being non-None, so the off path
        #: records nothing and stays byte-identical on the meter.
        self.read_cache = build_read_cache(read_cache, self.clock, self.meter)

    def provenance_backends(self):
        """Backend adapters by kind ({"sdb": ..., "ddb": ...}) — what a
        :class:`~repro.sharding.ShardRouter` placement map names."""
        if self._provenance_backends is None:
            from repro.aws.backend import DynamoBackend, SimpleDBBackend

            self._provenance_backends = {
                SimpleDBBackend.kind: SimpleDBBackend(self.simpledb),
                DynamoBackend.kind: DynamoBackend(
                    self.dynamodb, index_specs=self._ddb_indexes
                ),
            }
        return self._provenance_backends

    def quiesce(self, horizon: float | None = None) -> None:
        """Advance simulated time until all replica propagation lands.

        After this returns, every replica agrees with the authoritative
        state — the "eventual" in eventual consistency has arrived.
        """
        self.clock.run_until_idle(horizon)

    def bill(self) -> "str":
        """Render the account's USD bill so far."""
        return self.prices.cost(self.meter.snapshot()).render()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AWSAccount(now={self.clock.now:.1f}s, "
            f"window={self.consistency.window}s)"
        )
