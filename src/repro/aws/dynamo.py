"""Simulated DynamoDB-style key-value store (the §6 "what else?" backend).

The paper frames SimpleDB as *one* plausible provenance store and asks
how the architecture generalises. This module supplies the obvious
successor: a provisioned-throughput key-value service in the mould of
DynamoDB, different from SimpleDB in exactly the dimensions that make a
shard placement decision interesting:

* **tables → items → attributes**, where an attribute holds a *string
  set* — ``update_item`` ADDs values into the set, so replays are
  idempotent exactly like SimpleDB's ``PutAttributes`` set-merge, and
  one provenance item serialises identically on either backend;
* **item-size-based metering**: every request consumes capacity units —
  writes in 1 KB steps (:data:`~repro.units.DDB_WCU_BYTES`), strongly
  consistent reads in 4 KB steps (:data:`~repro.units.DDB_RCU_BYTES`),
  eventually consistent reads at half that — recorded exactly on the
  billing meter (:meth:`~repro.aws.billing.Meter.record_capacity`);
* **provisioned throughput**: each table declares read/write capacity
  (units per second of *simulated* time); a second that consumes more
  is throttled with ``ProvisionedThroughputExceeded`` and the client
  backs off by advancing the simulated clock;
* **eventually-consistent vs strongly-consistent reads**: ``GetItem``
  and ``Scan`` take a ``consistent`` flag — eventual reads go through
  the same :class:`~repro.aws.consistency.ReplicaSet` machinery as the
  2009 services (and cost half the read units), strong reads see the
  authoritative state (and cost double);
* **no query language — but global secondary indexes**: the base table
  still answers attribute predicates only by paged ``Scan`` +
  client-side filtering, but a table may carry named **GSIs**
  (:class:`IndexSpec`): for each value of a chosen attribute the index
  holds a compact projected entry per item. Index maintenance is
  **asynchronous** — every ``UpdateItem``/``DeleteItem`` propagates to
  the index's own :class:`~repro.aws.consistency.ReplicaSet` on its own
  replica schedule (real GSIs are eventually consistent, full stop:
  ``query_index`` never offers a strongly consistent read) — and is
  charged as **write amplification**: each changed index entry consumes
  write units sized by the projected entry, metered on the distinct
  :data:`~repro.aws.billing.DDB_GSI` key, as is index storage and
  Query-on-index read capacity. Creating an index on a populated table
  backfills it, with the backfill metered the same way.

Sizes follow DynamoDB's accounting: an item's size is the sum of UTF-8
attribute-name and value bytes plus the key; capacity units round up per
item (reads aggregate per page for ``Scan``, as BatchGetItem would).
Pages — ``Scan`` and index ``Query`` alike — are bounded by a byte
budget (:data:`~repro.units.DDB_PAGE_BYTES`, the simulation-scale
analogue of DynamoDB's 1 MB page): a scan spends it on every item it
crosses, an index page only on matching projected entries, which is
exactly why indexed queries need fewer round trips.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro import errors, units
from repro.aws import billing
from repro.aws.consistency import DelayModel, ReplicaSet, STRONG
from repro.aws.faults import RequestFaults
from repro.clock import SimClock
from repro.concurrency import new_lock, synchronized

#: Item attribute state: name -> tuple of distinct values (sorted) — the
#: same shape SimpleDB items use, so serialisers work on either backend.
ItemState = dict[str, tuple[str, ...]]

#: Maximum items returned per Scan page (modeled; real DynamoDB pages by
#: 1 MB of data — 250 keeps parity with the SimpleDB page size so the
#: benchmarks compare request counts like-for-like).
SCAN_MAX_PAGE = 250


def _attr_size(state: ItemState) -> int:
    return sum(
        len(name.encode()) + len(value.encode())
        for name, values in state.items()
        for value in values
    )


def _item_size(key: str, state: ItemState) -> int:
    return len(key.encode()) + _attr_size(state)


def _write_units_for(nbytes: int) -> float:
    """Write capacity units consumed by an item of ``nbytes`` (≥1)."""
    return float(max(1, math.ceil(nbytes / units.DDB_WCU_BYTES)))


#: Separator composing an index entry key from (key value, item name).
#: NUL cannot appear in serialised provenance attributes, and it sorts
#: before every printable byte, so entries order by (value, item name).
INDEX_KEY_SEP = "\x00"


@dataclass(frozen=True)
class IndexSpec:
    """Declaration of one global secondary index.

    ``key_attribute`` is the indexed attribute: every *value* of it
    becomes an index key (multi-valued attributes produce one entry per
    value, the string-set analogue of DynamoDB's one-entry-per-item).
    The projection carried by each entry is the key attribute itself
    plus the ``include`` list — queries whose predicate or requested
    attributes reach outside the projection cannot be served by the
    index — or, with ``project_all`` (DynamoDB's ``ALL`` projection
    type), the *entire item*: entries are bigger (more index storage
    and write amplification) but the index can serve any projection,
    including the full-item reads a migration streams. Items lacking
    the attribute have no entries (sparse index).

    ``range_attribute`` makes the index **composite** (DynamoDB's
    hash+range key schema): each entry's position is
    ``(hash value, range value, item name)``, entries sort by range
    value within one hash partition (values compare lexicographically,
    like SimpleDB — callers zero-pad numbers), and ``query_index``
    accepts a range condition that reads one contiguous *slice* of the
    partition instead of all of it. The sparsity rule extends to the
    range key: an item lacking *either* attribute has no entries — so
    a composite index can only serve predicates that constrain the
    range attribute (guaranteeing every matching item carries it).

    ``wcu``/``rcu`` optionally provision the index's own capacity: its
    maintenance writes and Query reads then throttle against the
    index's own per-second admission window instead of charging the
    base table's (``None``, the default, preserves the shared-window
    behaviour byte-for-byte — an underprovisioned index back-pressures
    its base table).
    """

    name: str
    key_attribute: str
    include: tuple[str, ...] = ()
    project_all: bool = False
    wcu: int | None = None
    rcu: int | None = None
    range_attribute: str | None = None

    @property
    def projected_attributes(self) -> frozenset[str]:
        keys = (
            (self.key_attribute,)
            if self.range_attribute is None
            else (self.key_attribute, self.range_attribute)
        )
        return frozenset((*keys, *self.include))

    def covers(self, attributes: frozenset[str] | set[str]) -> bool:
        """Can index entries answer reads of these attributes?"""
        return self.project_all or set(attributes) <= self.projected_attributes


def index_entry_key(
    key_value: str, item_name: str, range_value: str | None = None
) -> str:
    """The index keyspace position of one entry.

    Simple indexes position by ``(value, item name)``; composite ones
    insert the range value in the middle, so entries order by
    ``(hash value, range value, item name)`` and a range condition is a
    contiguous slice of the partition. The item name is always the
    segment after the *last* separator (``rpartition``), whichever
    shape the index uses.
    """
    if range_value is None:
        return f"{key_value}{INDEX_KEY_SEP}{item_name}"
    return f"{key_value}{INDEX_KEY_SEP}{range_value}{INDEX_KEY_SEP}{item_name}"


def _entry_positions(spec: IndexSpec, key: str, state: ItemState) -> list[str]:
    """Every index-entry position ``state`` produces under ``spec``.

    Multi-valued attributes fan out (one entry per value — per hash ×
    range pair for composite specs); items lacking the hash attribute,
    or the range attribute of a composite spec, produce none (sparse).
    """
    hash_values = state.get(spec.key_attribute, ())
    if spec.range_attribute is None:
        return [index_entry_key(value, key) for value in hash_values]
    range_values = state.get(spec.range_attribute, ())
    return [
        index_entry_key(hash_value, key, range_value)
        for hash_value in hash_values
        for range_value in range_values
    ]


#: Range-condition operators ``query_index`` accepts, with their arity.
_RANGE_OPS = {">=": 2, "<=": 2, ">": 2, "<": 2, "between": 3}


def _validate_range_condition(condition: tuple[str, ...]) -> None:
    arity = _RANGE_OPS.get(condition[0]) if condition else None
    if arity is None or len(condition) != arity:
        raise ValueError(
            f"bad range condition {condition!r}; expected ('>=', lo), "
            "('<=', hi), ('>', lo), ('<', hi) or ('between', lo, hi)"
        )


def _range_matches(value: str, condition: tuple[str, ...]) -> bool:
    op = condition[0]
    if op == ">=":
        return value >= condition[1]
    if op == "<=":
        return value <= condition[1]
    if op == ">":
        return value > condition[1]
    if op == "<":
        return value < condition[1]
    return condition[1] <= value <= condition[2]


def _project(state: ItemState, spec: IndexSpec) -> ItemState:
    if spec.project_all:
        return dict(state)
    projected = spec.projected_attributes
    return {name: values for name, values in state.items() if name in projected}


def _entry_size(entry_key: str, projected: ItemState) -> int:
    """Stored size of one index entry (key bytes + projection + the
    per-entry index overhead DynamoDB bills)."""
    return (
        units.DDB_INDEX_ENTRY_OVERHEAD
        + len(entry_key.encode())
        + _attr_size(projected)
    )


def _read_units_for(nbytes: int, consistent: bool) -> float:
    """Read capacity units for ``nbytes`` (strong = 4 KB steps, eventual
    half that; a miss still costs the minimum unit)."""
    base = float(max(1, math.ceil(nbytes / units.DDB_RCU_BYTES)))
    return base if consistent else base / 2.0


@dataclass(frozen=True)
class ScanResult:
    """One page of a table scan."""

    items: tuple[tuple[str, ItemState], ...]
    last_evaluated_key: str | None

    @property
    def item_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.items)


@dataclass(frozen=True)
class IndexQueryResult:
    """One page of a Query against a global secondary index.

    ``entries`` are (item name, projected attributes) pairs in index
    order — by (key value, item name), so an item whose indexed
    attribute holds several queried values appears once per value and
    the caller deduplicates. ``last_evaluated_key`` is the opaque
    pagination token (the last entry's index key position).
    """

    entries: tuple[tuple[str, ItemState], ...]
    last_evaluated_key: str | None


@dataclass
class _Index:
    """One GSI: its declaration plus the replicated entry space.

    The replica set's *authoritative* view is what the index converges
    to; reads always come off replicas — there is no strongly
    consistent index read to buy, mirroring real GSIs. Indexes whose
    spec declares ``wcu``/``rcu`` carry their own admission window (the
    per-index provisioned throughput real GSIs have); the others charge
    the base table's window, the original shared-window behaviour.
    """

    spec: IndexSpec
    replicas: ReplicaSet
    # Per-index admission window (used only when the spec provisions
    # its own capacity; mirrors the base table's window fields).
    window_start: float = 0.0
    window_read_units: float = 0.0
    window_write_units: float = 0.0
    # Incremental statistics over the converged entry space — what
    # DescribeTable reports and the query planner's cost model
    # consumes. Maintained at write-commit time (never sampled):
    # ``key_counts`` maps each hash-key value to its live entry count,
    # so an equality Query's result cardinality is exact; on composite
    # indexes ``range_counts`` does the same per range-key value, so a
    # range slice's cardinality is a sum over the slice.
    entry_count: int = 0
    entry_bytes: int = 0
    key_counts: dict[str, int] = field(default_factory=dict)
    range_counts: dict[str, int] = field(default_factory=dict)
    # Per-key *byte* histograms next to the count histograms: projected
    # entry widths vary wildly across hash partitions (a process item
    # projects its whole multi-valued input list; a pipe projects one
    # value), so an index-wide mean would misprice any slice. Same
    # maintenance discipline — exact, incremental, never sampled.
    key_bytes: dict[str, int] = field(default_factory=dict)
    range_bytes: dict[str, int] = field(default_factory=dict)


def _bump(histogram: dict[str, int], key: str, delta: int) -> None:
    left = histogram.get(key, 0) + delta
    if left > 0:
        histogram[key] = left
    else:
        histogram.pop(key, None)


def _stat_entry_written(index: _Index, entry_key: str, size_delta: int,
                        is_new: bool) -> None:
    """Fold one committed index-entry write into the index statistics."""
    index.entry_bytes += size_delta
    parts = entry_key.split(INDEX_KEY_SEP)
    _bump(index.key_bytes, parts[0], size_delta)
    if len(parts) == 3:  # composite: [hash, range, item]
        _bump(index.range_bytes, parts[1], size_delta)
    if is_new:
        index.entry_count += 1
        index.key_counts[parts[0]] = index.key_counts.get(parts[0], 0) + 1
        if len(parts) == 3:
            index.range_counts[parts[1]] = index.range_counts.get(parts[1], 0) + 1


def _stat_entry_deleted(index: _Index, entry_key: str, size: int) -> None:
    """Fold one committed index-entry delete into the index statistics."""
    index.entry_bytes -= size
    index.entry_count -= 1
    parts = entry_key.split(INDEX_KEY_SEP)
    _bump(index.key_bytes, parts[0], -size)
    remaining = index.key_counts.get(parts[0], 0) - 1
    if remaining > 0:
        index.key_counts[parts[0]] = remaining
    else:
        index.key_counts.pop(parts[0], None)
    if len(parts) == 3:
        _bump(index.range_bytes, parts[1], -size)
        left = index.range_counts.get(parts[1], 0) - 1
        if left > 0:
            index.range_counts[parts[1]] = left
        else:
            index.range_counts.pop(parts[1], None)


@dataclass
class _Table:
    """One table: replicated state plus provisioned-throughput ledger."""

    replicas: ReplicaSet
    authority: dict[str, ItemState]
    read_capacity: int
    write_capacity: int
    indexes: dict[str, _Index] = field(default_factory=dict)
    # Incremental authoritative-size statistic (DescribeTable's
    # ``TableSizeBytes``): updated by the same deltas the storage meter
    # sees, so mean item size is item-count arithmetic, not a scan.
    total_bytes: int = 0
    # Admission-control window: consumption within the current simulated
    # second, reset when the clock enters a new second.
    window_start: float = 0.0
    window_read_units: float = 0.0
    window_write_units: float = 0.0


class DynamoDBService:
    """The simulated DynamoDB-style endpoint for one AWS account."""

    def __init__(
        self,
        clock: SimClock,
        rng: random.Random,
        meter: billing.Meter,
        faults: RequestFaults | None = None,
        delays: DelayModel = STRONG,
        n_replicas: int = 3,
        read_capacity: int = units.DDB_DEFAULT_READ_CAPACITY,
        write_capacity: int = units.DDB_DEFAULT_WRITE_CAPACITY,
    ):
        self._clock = clock
        self._rng = rng
        self._meter = meter
        self._faults = faults or RequestFaults()
        self._delays = delays
        self._n_replicas = n_replicas
        self._default_read_capacity = read_capacity
        self._default_write_capacity = write_capacity
        self._tables: dict[str, _Table] = {}
        self._lock = new_lock()

    @property
    def clock(self) -> SimClock:
        """The simulated clock (clients advance it to ride out throttling)."""
        return self._clock

    # -- table management ---------------------------------------------------

    @synchronized
    def create_table(
        self,
        name: str,
        read_capacity: int | None = None,
        write_capacity: int | None = None,
    ) -> None:
        """Create a table with provisioned throughput. Idempotent (like
        the SimpleDB adapter's ``CreateDomain``): re-creating an existing
        table leaves its data and capacity untouched."""
        self._request("CreateTable")
        if name in self._tables:
            return
        self._tables[name] = _Table(
            replicas=ReplicaSet(
                f"ddb/{name}", self._clock, self._rng, self._n_replicas, self._delays
            ),
            authority={},
            read_capacity=read_capacity or self._default_read_capacity,
            write_capacity=write_capacity or self._default_write_capacity,
        )

    @synchronized
    def delete_table(self, name: str) -> None:
        self._request("DeleteTable")
        removed = self._tables.pop(name, None)
        if removed is None:
            return
        if removed.authority:
            freed = sum(
                _item_size(key, state) for key, state in removed.authority.items()
            )
            self._meter.adjust_stored(billing.DDB, -freed)
        index_freed = sum(
            _entry_size(entry_key, projected)
            for index in removed.indexes.values()
            for entry_key, projected in index.replicas.authoritative_items()
        )
        if index_freed:
            self._meter.adjust_stored(billing.DDB_GSI, -index_freed)

    @synchronized
    def list_tables(self) -> list[str]:
        self._request("ListTables")
        return sorted(self._tables)

    def _table(self, name: str) -> _Table:
        table = self._tables.get(name)
        if table is None:
            raise errors.NoSuchTable(name)
        return table

    # -- secondary indexes --------------------------------------------------

    @synchronized
    def create_index(self, table_name: str, spec: IndexSpec) -> float:
        """Create a GSI, backfilling it from the base table.

        Idempotent by index name (re-creating leaves the existing index
        untouched). The backfill writes one projected entry per
        (item, key value) pair through the index's replica machinery —
        entries land on the index's own schedule — and is metered as
        index write units plus index storage on the
        :data:`~repro.aws.billing.DDB_GSI` billing key. Returns the
        write units the backfill consumed (0.0 for an empty table or an
        already-existing index). Backfill bypasses the table's
        provisioned-throughput window, like DynamoDB's background
        backfill.
        """
        table = self._table(table_name)
        self._check_faults("CreateIndex")
        self._meter.record_request(billing.DDB, "CreateIndex")
        if spec.name in table.indexes:
            return 0.0
        index = _Index(
            spec=spec,
            replicas=ReplicaSet(
                f"ddb/{table_name}/{spec.name}",
                self._clock,
                self._rng,
                self._n_replicas,
                self._delays,
            ),
        )
        table.indexes[spec.name] = index
        backfill_units = 0.0
        stored = 0
        for key, state in table.authority.items():
            projected = _project(state, spec)
            for entry_key in _entry_positions(spec, key, state):
                size = _entry_size(entry_key, projected)
                backfill_units += _write_units_for(size)
                stored += size
                index.replicas.write(entry_key, dict(projected))
                _stat_entry_written(index, entry_key, size, True)
        if backfill_units:
            self._meter.record_capacity(billing.DDB_GSI, write_units=backfill_units)
        if stored:
            self._meter.adjust_stored(billing.DDB_GSI, stored)
        return backfill_units

    @synchronized
    def delete_index(self, table_name: str, index_name: str) -> None:
        """Drop a GSI and free its projected storage (idempotent)."""
        table = self._table(table_name)
        self._check_faults("DeleteIndex")
        self._meter.record_request(billing.DDB, "DeleteIndex")
        index = table.indexes.pop(index_name, None)
        if index is None:
            return
        freed = sum(
            _entry_size(entry_key, projected)
            for entry_key, projected in index.replicas.authoritative_items()
        )
        if freed:
            self._meter.adjust_stored(billing.DDB_GSI, -freed)

    @synchronized
    def list_indexes(self, table_name: str) -> list[IndexSpec]:
        """The table's index declarations, in creation order. Unmetered:
        clients cache table schemas (DescribeTable) between requests."""
        table = self._tables.get(table_name)
        if table is None:
            return []
        return [index.spec for index in table.indexes.values()]

    @synchronized
    def index_lag_seconds(self, table_name: str, index_name: str) -> float:
        """Replication lag of an index: how long its oldest still
        propagating entry has been in flight (0.0 when converged).
        Unmetered observability, the CloudWatch-metric analogue."""
        return self._index(table_name, index_name).replicas.lag_seconds()

    @synchronized
    def index_pending_writes(self, table_name: str, index_name: str) -> int:
        """Scheduled-but-unapplied index entry installs (lag backlog)."""
        return self._index(table_name, index_name).replicas.pending_installs

    def _index(self, table_name: str, index_name: str) -> _Index:
        index = self._table(table_name).indexes.get(index_name)
        if index is None:
            raise errors.NoSuchIndex(
                f"table {table_name!r} has no index {index_name!r}"
            )
        return index

    def _index_put_plan(self, table: _Table, key: str, new_state: ItemState):
        """Index maintenance a base write triggers.

        Returns ``(writes, shared_units, index_charges)``:
        ``shared_units`` are the index write units charged against the
        base table's admission window (indexes without their own
        ``wcu``); ``index_charges`` lists ``(index, write_units)``
        for indexes that provision their own capacity. Only entries
        whose projected state actually changes are written and charged
        — a replayed idempotent put amplifies nothing, like real GSIs
        (no index write when key and projection are unchanged).
        """
        writes: list[tuple[_Index, str, ItemState, int, bool]] = []
        shared_units = 0.0
        index_charges: list[tuple[_Index, float, float]] = []
        for index in table.indexes.values():
            projected = _project(new_state, index.spec)
            units = 0.0
            for entry_key in _entry_positions(index.spec, key, new_state):
                old = index.replicas.read_authoritative(entry_key)
                if old == projected:
                    continue
                old_size = _entry_size(entry_key, old) if old is not None else 0
                new_size = _entry_size(entry_key, projected)
                units += _write_units_for(max(old_size, new_size))
                writes.append(
                    (index, entry_key, projected, new_size - old_size, old is None)
                )
            if not units:
                continue
            if index.spec.wcu is not None:
                index_charges.append((index, 0.0, units))
            else:
                shared_units += units
        return writes, shared_units, index_charges

    def _index_delete_plan(self, table: _Table, key: str, old_state: ItemState):
        """Index maintenance a base delete triggers (same split as
        :meth:`_index_put_plan`)."""
        deletes: list[tuple[_Index, str, int]] = []
        shared_units = 0.0
        index_charges: list[tuple[_Index, float, float]] = []
        for index in table.indexes.values():
            units = 0.0
            for entry_key in _entry_positions(index.spec, key, old_state):
                old = index.replicas.read_authoritative(entry_key)
                if old is None:
                    continue
                size = _entry_size(entry_key, old)
                units += _write_units_for(size)
                deletes.append((index, entry_key, size))
            if not units:
                continue
            if index.spec.wcu is not None:
                index_charges.append((index, 0.0, units))
            else:
                shared_units += units
        return deletes, shared_units, index_charges

    # -- provisioned-throughput admission control ---------------------------

    @staticmethod
    def _roll_window(window, now: float) -> None:
        if now - window.window_start >= 1.0:
            window.window_start = math.floor(now)
            window.window_read_units = 0.0
            window.window_write_units = 0.0

    def _admit(
        self,
        table: _Table,
        read_units: float,
        write_units: float,
        index_charges: list[tuple[_Index, float, float]] = (),
    ) -> None:
        """Charge the current one-second window(s); throttle if exhausted.

        ``index_charges`` routes capacity to indexes provisioned with
        their own ``wcu``/``rcu`` — their windows throttle independently
        of the base table's. Admission is all-or-nothing: every window
        is validated before any is charged, so a throttled request
        consumes nothing anywhere and is not metered — the client backs
        off (advancing the simulated clock into a fresh window) and
        retries, exactly like SDK exponential backoff.
        """
        now = self._clock.now
        self._roll_window(table, now)
        if table.window_read_units + read_units > table.read_capacity:
            raise errors.ProvisionedThroughputExceeded(
                f"read capacity {table.read_capacity} units/s exhausted"
            )
        if table.window_write_units + write_units > table.write_capacity:
            raise errors.ProvisionedThroughputExceeded(
                f"write capacity {table.write_capacity} units/s exhausted"
            )
        for index, index_reads, index_writes in index_charges:
            self._roll_window(index, now)
            spec = index.spec
            if (
                spec.rcu is not None
                and index.window_read_units + index_reads > spec.rcu
            ):
                raise errors.ProvisionedThroughputExceeded(
                    f"index {spec.name!r} read capacity {spec.rcu} units/s exhausted"
                )
            if (
                spec.wcu is not None
                and index.window_write_units + index_writes > spec.wcu
            ):
                raise errors.ProvisionedThroughputExceeded(
                    f"index {spec.name!r} write capacity {spec.wcu} units/s exhausted"
                )
        table.window_read_units += read_units
        table.window_write_units += write_units
        for index, index_reads, index_writes in index_charges:
            index.window_read_units += index_reads
            index.window_write_units += index_writes

    # -- writes -------------------------------------------------------------

    @synchronized
    def update_item(
        self, table_name: str, key: str, adds: list[tuple[str, str]]
    ) -> None:
        """ADD attribute values into the item's string sets.

        Set semantics make replays idempotent — the property A3's commit
        daemon replay correctness rests on, preserved per backend.
        Consumes write units for the *larger* of the item's size before
        and after the update (DynamoDB's update accounting), **plus**
        one index write per GSI entry the update changes — the write
        amplification of having indexes, metered on the distinct
        :data:`~repro.aws.billing.DDB_GSI` key and charged against the
        same provisioned-throughput window (an underprovisioned index
        back-pressures its base table). Index entries propagate through
        the index's own replica schedule — the asynchronous maintenance
        real GSIs perform.
        """
        if not adds:
            raise errors.ItemSizeLimitExceeded("update_item requires attributes")
        table = self._table(table_name)
        existing = table.authority.get(key)
        state: ItemState = dict(existing) if existing is not None else {}
        # Stored-byte accounting: an absent item occupies nothing (its
        # key bytes only start counting once the item exists).
        old_size = _item_size(key, state) if existing is not None else 0
        for name, value in adds:
            merged = set(state.get(name, ()))
            merged.add(value)
            state[name] = tuple(sorted(merged))
        new_size = _item_size(key, state)
        if new_size > units.DDB_MAX_ITEM_SIZE:
            raise errors.ItemSizeLimitExceeded(
                f"item {key!r} would be {new_size} bytes "
                f"(limit {units.DDB_MAX_ITEM_SIZE})"
            )
        write_units = _write_units_for(max(old_size, new_size))
        index_writes, shared_units, index_charges = self._index_put_plan(
            table, key, state
        )
        index_units = shared_units + sum(units for _, _, units in index_charges)
        self._check_faults("UpdateItem")
        self._admit(table, 0.0, write_units + shared_units, index_charges)
        self._meter.record_request(billing.DDB, "UpdateItem")
        self._meter.record_capacity(billing.DDB, write_units=write_units)
        self._meter.record_transfer_in(
            billing.DDB,
            sum(len(n.encode()) + len(v.encode()) for n, v in adds),
        )
        self._meter.adjust_stored(billing.DDB, new_size - old_size)
        table.total_bytes += new_size - old_size
        table.authority[key] = state
        table.replicas.write(key, dict(state))
        if index_writes:
            self._meter.record_capacity(billing.DDB_GSI, write_units=index_units)
            stored_delta = sum(delta for _, _, _, delta, _ in index_writes)
            if stored_delta:
                self._meter.adjust_stored(billing.DDB_GSI, stored_delta)
            for index, entry_key, projected, delta, is_new in index_writes:
                index.replicas.write(entry_key, dict(projected))
                _stat_entry_written(index, entry_key, delta, is_new)

    @synchronized
    def batch_write_item(
        self, table_name: str, puts: list[tuple[str, list[tuple[str, str]]]]
    ) -> list[tuple[str, list[tuple[str, str]]]]:
        """Write up to 25 items in one round trip (put requests only).

        Each entry lands with :meth:`update_item`'s ADD semantics and
        capacity accounting — batching amortises the *round trips*, not
        the write units, which DynamoDB charges per item either way.
        Admission is per item against the provisioned window: entries
        the current second cannot afford come back as the
        ``UnprocessedItems`` list (same shape as ``puts``) for the
        caller to retry after backing off, while admitted entries commit
        — the honest partial-success contract of the real API. If *every*
        entry is throttled the call raises
        :class:`~repro.errors.ProvisionedThroughputExceeded` and meters
        nothing, exactly like a throttled ``UpdateItem``. Entries
        repeating a key merge sequentially in call order.
        """
        if not puts:
            raise errors.EmptyBatchRequest("batch_write_item requires put requests")
        if len(puts) > units.DDB_MAX_BATCH_WRITE_ITEMS:
            raise errors.TooManyEntriesInBatchRequest(
                f"{len(puts)} put requests in one call (limit "
                f"{units.DDB_MAX_BATCH_WRITE_ITEMS})"
            )
        table = self._table(table_name)
        # Validate the whole request before anything commits or meters
        # (mirrors update_item, which sizes the merged item before the
        # fault/admission/metering sequence).
        staged: dict[str, ItemState] = {}
        for key, adds in puts:
            if not adds:
                raise errors.ItemSizeLimitExceeded(
                    "batch_write_item requires attributes"
                )
            state = staged.get(key)
            if state is None:
                existing = table.authority.get(key)
                state = dict(existing) if existing is not None else {}
            for name, value in adds:
                merged = set(state.get(name, ()))
                merged.add(value)
                state[name] = tuple(sorted(merged))
            if _item_size(key, state) > units.DDB_MAX_ITEM_SIZE:
                raise errors.ItemSizeLimitExceeded(
                    f"item {key!r} would be {_item_size(key, state)} bytes "
                    f"(limit {units.DDB_MAX_ITEM_SIZE})"
                )
            staged[key] = state
        self._check_faults("BatchWriteItem")
        unprocessed: list[tuple[str, list[tuple[str, str]]]] = []
        admitted_units = 0.0
        admitted_transfer = 0
        admitted_index_units = 0.0
        admitted_index_stored = 0
        for key, adds in puts:
            existing = table.authority.get(key)
            state = dict(existing) if existing is not None else {}
            old_size = _item_size(key, state) if existing is not None else 0
            for name, value in adds:
                merged = set(state.get(name, ()))
                merged.add(value)
                state[name] = tuple(sorted(merged))
            new_size = _item_size(key, state)
            write_units = _write_units_for(max(old_size, new_size))
            index_writes, shared_units, index_charges = self._index_put_plan(
                table, key, state
            )
            try:
                self._admit(table, 0.0, write_units + shared_units, index_charges)
            except errors.ProvisionedThroughputExceeded:
                unprocessed.append((key, adds))
                continue
            admitted_units += write_units
            admitted_transfer += sum(
                len(n.encode()) + len(v.encode()) for n, v in adds
            )
            self._meter.adjust_stored(billing.DDB, new_size - old_size)
            table.total_bytes += new_size - old_size
            table.authority[key] = state
            table.replicas.write(key, dict(state))
            if index_writes:
                admitted_index_units += shared_units + sum(
                    charge for _, _, charge in index_charges
                )
                admitted_index_stored += sum(
                    delta for _, _, _, delta, _ in index_writes
                )
                for index, entry_key, projected, delta, is_new in index_writes:
                    index.replicas.write(entry_key, dict(projected))
                    _stat_entry_written(index, entry_key, delta, is_new)
        if len(unprocessed) == len(puts):
            raise errors.ProvisionedThroughputExceeded(
                f"write capacity {table.write_capacity} units/s exhausted "
                f"for every entry in the batch"
            )
        self._meter.record_request(billing.DDB, "BatchWriteItem")
        self._meter.record_capacity(billing.DDB, write_units=admitted_units)
        self._meter.record_transfer_in(billing.DDB, admitted_transfer)
        if admitted_index_units:
            self._meter.record_capacity(
                billing.DDB_GSI, write_units=admitted_index_units
            )
            if admitted_index_stored:
                self._meter.adjust_stored(billing.DDB_GSI, admitted_index_stored)
        return unprocessed

    @synchronized
    def delete_item(self, table_name: str, key: str) -> None:
        """Delete an item. Idempotent: deleting an absent item succeeds
        (and still consumes the minimum write unit, as DynamoDB does).
        Every GSI entry the item held is deleted too, each costing index
        write units sized by the entry it removes."""
        table = self._table(table_name)
        state = table.authority.get(key)
        old_size = _item_size(key, state) if state is not None else 0
        write_units = _write_units_for(old_size)
        index_deletes, shared_units, index_charges = (
            self._index_delete_plan(table, key, state) if state is not None
            else ([], 0.0, [])
        )
        index_units = shared_units + sum(units for _, _, units in index_charges)
        self._check_faults("DeleteItem")
        self._admit(table, 0.0, write_units + shared_units, index_charges)
        self._meter.record_request(billing.DDB, "DeleteItem")
        self._meter.record_capacity(billing.DDB, write_units=write_units)
        if state is None:
            return
        del table.authority[key]
        self._meter.adjust_stored(billing.DDB, -_attr_size(state) - len(key.encode()))
        table.total_bytes -= old_size
        table.replicas.delete(key)
        if index_deletes:
            self._meter.record_capacity(billing.DDB_GSI, write_units=index_units)
            self._meter.adjust_stored(
                billing.DDB_GSI, -sum(size for _, _, size in index_deletes)
            )
            for index, entry_key, size in index_deletes:
                index.replicas.delete(entry_key)
                _stat_entry_deleted(index, entry_key, size)

    # -- reads --------------------------------------------------------------

    @synchronized
    def get_item(
        self, table_name: str, key: str, consistent: bool = False
    ) -> ItemState:
        """Fetch one item; ``consistent=True`` reads the authoritative
        state at double the read-unit cost, ``False`` reads a replica
        (may be stale or empty) at half cost."""
        table = self._table(table_name)
        if consistent:
            state = table.authority.get(key) or {}
        else:
            state = table.replicas.read(key) or {}
        read_units = _read_units_for(_item_size(key, state), consistent)
        self._check_faults("GetItem")
        self._admit(table, read_units, 0.0)
        self._meter.record_request(billing.DDB, "GetItem")
        self._meter.record_capacity(billing.DDB, read_units=read_units)
        self._meter.record_transfer_out(billing.DDB, _attr_size(state))
        return dict(state)

    @synchronized
    def scan(
        self,
        table_name: str,
        exclusive_start_key: str | None = None,
        limit: int = SCAN_MAX_PAGE,
        consistent: bool = False,
    ) -> ScanResult:
        """One page of a full table scan, in key order.

        Read units are charged for every item *scanned* on the page (the
        whole point of scan-based filtering being expensive), aggregated
        per page before rounding — DynamoDB's scan accounting. A page
        ends at ``limit`` items or when its byte budget
        (:data:`~repro.units.DDB_PAGE_BYTES`) is spent, whichever comes
        first (the last item may overshoot the budget, as DynamoDB's
        1 MB pages do).
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        table = self._table(table_name)
        if consistent:
            snapshot = [
                (key, dict(table.authority[key])) for key in sorted(table.authority)
            ]
        else:
            snapshot = [(k, dict(v)) for k, v in table.replicas.items_snapshot()]
        if exclusive_start_key is not None:
            snapshot = [(k, v) for k, v in snapshot if k > exclusive_start_key]
        page: list[tuple[str, ItemState]] = []
        scanned_bytes = 0
        for key, state in snapshot:
            page.append((key, state))
            scanned_bytes += _item_size(key, state)
            if len(page) >= min(limit, SCAN_MAX_PAGE):
                break
            if scanned_bytes >= units.DDB_PAGE_BYTES:
                break
        base = float(max(1, math.ceil(scanned_bytes / units.DDB_RCU_BYTES)))
        read_units = base if consistent else base / 2.0
        self._check_faults("Scan")
        self._admit(table, read_units, 0.0)
        self._meter.record_request(billing.DDB, "Scan")
        self._meter.record_capacity(billing.DDB, read_units=read_units)
        self._meter.record_transfer_out(
            billing.DDB, sum(len(k.encode()) + _attr_size(v) for k, v in page)
        )
        last_key = page[-1][0] if len(snapshot) > len(page) and page else None
        return ScanResult(
            items=tuple((k, dict(v)) for k, v in page),
            last_evaluated_key=last_key,
        )

    @synchronized
    def query_index(
        self,
        table_name: str,
        index_name: str,
        key_values: list[str],
        exclusive_start_key: str | None = None,
        limit: int = SCAN_MAX_PAGE,
        range_condition: tuple[str, ...] | None = None,
    ) -> IndexQueryResult:
        """One page of a Query against a GSI, for any of ``key_values``.

        Accepting several key values in one request is the batch-query
        front-end (the IN-list analogue of SimpleDB's disjunctions),
        kept so request counts stay comparable across backends. Reads
        are **always eventually consistent** — entries come off one of
        the index's replicas, which converge on their own schedule —
        and read units are charged on the projected entry bytes the
        page crosses (min one unit, halved for the eventual read),
        metered on the :data:`~repro.aws.billing.DDB_GSI` billing key.
        Pages bound by ``limit`` items or the shared byte budget.

        ``range_condition`` (composite indexes only) restricts the page
        to the partition slice satisfying the key condition — one of
        ``(">=", lo)``, ``("<=", hi)``, ``(">", lo)``, ``("<", hi)`` or
        ``("between", lo, hi)``, compared lexicographically against the
        entry's range value. The slice is what the page budget is spent
        on — entries outside it are never crossed, which is exactly the
        saving the planner buys — and the serving costs land on the
        distinct :data:`~repro.aws.billing.DDB_GSI_RANGE` billing key.
        """
        if not key_values:
            raise ValueError("query_index requires at least one key value")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        table = self._table(table_name)
        index = table.indexes.get(index_name)
        if index is None:
            raise errors.NoSuchIndex(
                f"table {table_name!r} has no index {index_name!r}"
            )
        if range_condition is not None:
            if index.spec.range_attribute is None:
                raise ValueError(
                    f"index {index_name!r} has no range key; "
                    "range_condition requires a composite index"
                )
            _validate_range_condition(range_condition)
        wanted = set(key_values)
        matches: list[tuple[str, str, ItemState]] = []
        for entry_key, projected in index.replicas.items_snapshot():
            value, _, rest = entry_key.partition(INDEX_KEY_SEP)
            if value not in wanted:
                continue
            if range_condition is not None:
                range_value = rest.rpartition(INDEX_KEY_SEP)[0]
                if not _range_matches(range_value, range_condition):
                    continue
            if exclusive_start_key is not None and entry_key <= exclusive_start_key:
                continue
            item_name = rest.rpartition(INDEX_KEY_SEP)[2]
            matches.append((entry_key, item_name, projected))
        billing_key = (
            billing.DDB_GSI_RANGE if range_condition is not None else billing.DDB_GSI
        )
        return self._serve_index_page(
            table, index, matches, limit, "Query", billing_key
        )

    def _serve_index_page(
        self,
        table: _Table,
        index: _Index,
        matches: list[tuple[str, str, ItemState]],
        limit: int,
        op: str,
        billing_key: str = billing.DDB_GSI,
    ) -> IndexQueryResult:
        """Shared paging/admission/metering for every GSI read path.

        ``matches`` are (entry key, item name, projected attrs) in index
        order, already filtered past the pagination token — Query and
        Scan differ only in how they select entries, never in how a page
        is budgeted, admitted (the index's own ``rcu`` window when
        provisioned, the base table's otherwise), or billed (eventual
        read units + transfer on ``billing_key`` —
        :data:`~repro.aws.billing.DDB_GSI` except for range-conditioned
        Queries, which land on
        :data:`~repro.aws.billing.DDB_GSI_RANGE`).
        """
        page: list[tuple[str, str, ItemState]] = []
        page_bytes = 0
        for entry_key, item_name, projected in matches:
            page.append((entry_key, item_name, dict(projected)))
            page_bytes += _entry_size(entry_key, projected)
            if len(page) >= min(limit, SCAN_MAX_PAGE):
                break
            if page_bytes >= units.DDB_PAGE_BYTES:
                break
        base = float(max(1, math.ceil(page_bytes / units.DDB_RCU_BYTES)))
        read_units = base / 2.0  # no strongly consistent GSI reads exist
        self._check_faults(op)
        if index.spec.rcu is not None:
            self._admit(table, 0.0, 0.0, [(index, read_units, 0.0)])
        else:
            self._admit(table, read_units, 0.0)
        self._meter.record_request(billing_key, op)
        self._meter.record_capacity(billing_key, read_units=read_units)
        self._meter.record_transfer_out(
            billing_key,
            sum(
                len(item_name.encode()) + _attr_size(projected)
                for _, item_name, projected in page
            ),
        )
        last = page[-1][0] if page and len(matches) > len(page) else None
        return IndexQueryResult(
            entries=tuple(
                (item_name, projected) for _, item_name, projected in page
            ),
            last_evaluated_key=last,
        )

    @synchronized
    def scan_index(
        self,
        table_name: str,
        index_name: str,
        exclusive_start_key: str | None = None,
        limit: int = SCAN_MAX_PAGE,
    ) -> IndexQueryResult:
        """One page of a Scan over a GSI's entries, in index-key order.

        Real DynamoDB supports scanning a GSI; with an ``ALL``
        projection (:attr:`IndexSpec.project_all`) that makes the index
        a *migration read path*: a rebalance streams full items off the
        index's entry space instead of the base table, paying read
        units (on the :data:`~repro.aws.billing.DDB_GSI` key, against
        the index's own capacity when provisioned) sized by the entries
        it crosses. Always eventually consistent, like every GSI read;
        an item appears once per value of the indexed attribute, so
        callers deduplicate by item name.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        table = self._table(table_name)
        index = table.indexes.get(index_name)
        if index is None:
            raise errors.NoSuchIndex(
                f"table {table_name!r} has no index {index_name!r}"
            )
        matches = [
            (entry_key, entry_key.rpartition(INDEX_KEY_SEP)[2], projected)
            for entry_key, projected in index.replicas.items_snapshot()
            if exclusive_start_key is None or entry_key > exclusive_start_key
        ]
        return self._serve_index_page(table, index, matches, limit, "Scan")

    @synchronized
    def index_distinct_item_count(self, table_name: str, index_name: str) -> int:
        """Distinct items with at least one entry in the index's
        *converged* view. Unmetered (DescribeTable-style schema/size
        metadata clients cache) — what a migration compares against
        :meth:`item_count` to decide whether a sparse index really
        covers the whole table before streaming from it."""
        index = self._index(table_name, index_name)
        names = {
            entry_key.rpartition(INDEX_KEY_SEP)[2]
            for entry_key, _ in index.replicas.authoritative_items()
        }
        return len(names)

    @synchronized
    def describe_table(self, table_name: str) -> dict:
        """Table and per-index statistics — what the query planner's
        cost model consumes.

        Every figure is maintained **incrementally** at write-commit
        time (never sampled or scanned): the table's item count and
        authoritative byte total, and per index its entry count, entry
        bytes, the distinct hash-key values with their exact entry
        counts, and the current replication lag. Metered as one
        DynamoDB request (the DescribeTable control-plane call), priced
        by the ``dynamodb.requests`` line — deliberately cheap next to
        the data-plane requests the planner's choice avoids.
        """
        table = self._table(table_name)
        self._request("DescribeTable")
        return {
            "item_count": len(table.authority),
            "table_bytes": table.total_bytes,
            "indexes": {
                name: {
                    "range_attribute": index.spec.range_attribute,
                    "entry_count": index.entry_count,
                    "entry_bytes": index.entry_bytes,
                    "distinct_keys": len(index.key_counts),
                    "key_counts": dict(index.key_counts),
                    "key_bytes": dict(index.key_bytes),
                    "range_counts": dict(index.range_counts),
                    "range_bytes": dict(index.range_bytes),
                    "lag_seconds": index.replicas.lag_seconds(),
                }
                for name, index in table.indexes.items()
            },
        }

    # -- oracle helpers (tests/migration verification) ----------------------

    @synchronized
    def authoritative_item(self, table_name: str, key: str) -> ItemState | None:
        state = self._tables.get(table_name)
        if state is None:
            return None
        found = state.authority.get(key)
        return dict(found) if found is not None else None

    @synchronized
    def authoritative_item_names(self, table_name: str) -> list[str]:
        table = self._tables.get(table_name)
        return sorted(table.authority) if table is not None else []

    @synchronized
    def item_count(self, table_name: str) -> int:
        table = self._tables.get(table_name)
        return len(table.authority) if table is not None else 0

    @synchronized
    def provisioned_throughput(self, table_name: str) -> tuple[int, int]:
        """(read_capacity, write_capacity) units/second for a table."""
        table = self._table(table_name)
        return table.read_capacity, table.write_capacity

    @synchronized
    def authoritative_index_entries(
        self, table_name: str, index_name: str
    ) -> dict[tuple[str, str], ItemState]:
        """The index's converged view: (key position, item name) →
        projected attributes — the key position is the hash value for a
        simple index, ``hash\\x00range`` for a composite one. Oracle
        read bypassing index replication."""
        index = self._index(table_name, index_name)
        entries: dict[tuple[str, str], ItemState] = {}
        for entry_key, projected in index.replicas.authoritative_items():
            value, _, item_name = entry_key.rpartition(INDEX_KEY_SEP)
            entries[(value, item_name)] = dict(projected)
        return entries

    @synchronized
    def index_converged(self, table_name: str, index_name: str) -> bool:
        """True when every index replica matches the converged view."""
        return self._index(table_name, index_name).replicas.is_converged()

    # -- internals ----------------------------------------------------------

    def _check_faults(self, op: str) -> None:
        """Fault injection, before ANY state mutation (so a retried 503
        cannot double-charge the admission window or the meter)."""
        self._faults.before_request(billing.DDB, op)

    def _request(self, op: str) -> None:
        self._check_faults(op)
        self._meter.record_request(billing.DDB, op)
