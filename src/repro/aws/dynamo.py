"""Simulated DynamoDB-style key-value store (the §6 "what else?" backend).

The paper frames SimpleDB as *one* plausible provenance store and asks
how the architecture generalises. This module supplies the obvious
successor: a provisioned-throughput key-value service in the mould of
DynamoDB, different from SimpleDB in exactly the dimensions that make a
shard placement decision interesting:

* **tables → items → attributes**, where an attribute holds a *string
  set* — ``update_item`` ADDs values into the set, so replays are
  idempotent exactly like SimpleDB's ``PutAttributes`` set-merge, and
  one provenance item serialises identically on either backend;
* **item-size-based metering**: every request consumes capacity units —
  writes in 1 KB steps (:data:`~repro.units.DDB_WCU_BYTES`), strongly
  consistent reads in 4 KB steps (:data:`~repro.units.DDB_RCU_BYTES`),
  eventually consistent reads at half that — recorded exactly on the
  billing meter (:meth:`~repro.aws.billing.Meter.record_capacity`);
* **provisioned throughput**: each table declares read/write capacity
  (units per second of *simulated* time); a second that consumes more
  is throttled with ``ProvisionedThroughputExceeded`` and the client
  backs off by advancing the simulated clock;
* **eventually-consistent vs strongly-consistent reads**: ``GetItem``
  and ``Scan`` take a ``consistent`` flag — eventual reads go through
  the same :class:`~repro.aws.consistency.ReplicaSet` machinery as the
  2009 services (and cost half the read units), strong reads see the
  authoritative state (and cost double);
* **no query language**: there is no secondary index over attributes,
  so the query engine's scatter phases read a DynamoDB-placed shard
  with paged ``Scan`` + client-side filtering instead of SimpleDB's
  server-side ``Query`` — the cost asymmetry the multibackend benchmark
  measures.

Sizes follow DynamoDB's accounting: an item's size is the sum of UTF-8
attribute-name and value bytes plus the key; capacity units round up per
item (reads aggregate per page for ``Scan``, as BatchGetItem would).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro import errors, units
from repro.aws import billing
from repro.aws.consistency import DelayModel, ReplicaSet, STRONG
from repro.aws.faults import RequestFaults
from repro.clock import SimClock
from repro.concurrency import new_lock, synchronized

#: Item attribute state: name -> tuple of distinct values (sorted) — the
#: same shape SimpleDB items use, so serialisers work on either backend.
ItemState = dict[str, tuple[str, ...]]

#: Maximum items returned per Scan page (modeled; real DynamoDB pages by
#: 1 MB of data — 250 keeps parity with the SimpleDB page size so the
#: benchmarks compare request counts like-for-like).
SCAN_MAX_PAGE = 250


def _attr_size(state: ItemState) -> int:
    return sum(
        len(name.encode()) + len(value.encode())
        for name, values in state.items()
        for value in values
    )


def _item_size(key: str, state: ItemState) -> int:
    return len(key.encode()) + _attr_size(state)


def _write_units_for(nbytes: int) -> float:
    """Write capacity units consumed by an item of ``nbytes`` (≥1)."""
    return float(max(1, math.ceil(nbytes / units.DDB_WCU_BYTES)))


def _read_units_for(nbytes: int, consistent: bool) -> float:
    """Read capacity units for ``nbytes`` (strong = 4 KB steps, eventual
    half that; a miss still costs the minimum unit)."""
    base = float(max(1, math.ceil(nbytes / units.DDB_RCU_BYTES)))
    return base if consistent else base / 2.0


@dataclass(frozen=True)
class ScanResult:
    """One page of a table scan."""

    items: tuple[tuple[str, ItemState], ...]
    last_evaluated_key: str | None

    @property
    def item_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.items)


@dataclass
class _Table:
    """One table: replicated state plus provisioned-throughput ledger."""

    replicas: ReplicaSet
    authority: dict[str, ItemState]
    read_capacity: int
    write_capacity: int
    # Admission-control window: consumption within the current simulated
    # second, reset when the clock enters a new second.
    window_start: float = 0.0
    window_read_units: float = 0.0
    window_write_units: float = 0.0


class DynamoDBService:
    """The simulated DynamoDB-style endpoint for one AWS account."""

    def __init__(
        self,
        clock: SimClock,
        rng: random.Random,
        meter: billing.Meter,
        faults: RequestFaults | None = None,
        delays: DelayModel = STRONG,
        n_replicas: int = 3,
        read_capacity: int = units.DDB_DEFAULT_READ_CAPACITY,
        write_capacity: int = units.DDB_DEFAULT_WRITE_CAPACITY,
    ):
        self._clock = clock
        self._rng = rng
        self._meter = meter
        self._faults = faults or RequestFaults()
        self._delays = delays
        self._n_replicas = n_replicas
        self._default_read_capacity = read_capacity
        self._default_write_capacity = write_capacity
        self._tables: dict[str, _Table] = {}
        self._lock = new_lock()

    @property
    def clock(self) -> SimClock:
        """The simulated clock (clients advance it to ride out throttling)."""
        return self._clock

    # -- table management ---------------------------------------------------

    @synchronized
    def create_table(
        self,
        name: str,
        read_capacity: int | None = None,
        write_capacity: int | None = None,
    ) -> None:
        """Create a table with provisioned throughput. Idempotent (like
        the SimpleDB adapter's ``CreateDomain``): re-creating an existing
        table leaves its data and capacity untouched."""
        self._request("CreateTable")
        if name in self._tables:
            return
        self._tables[name] = _Table(
            replicas=ReplicaSet(
                f"ddb/{name}", self._clock, self._rng, self._n_replicas, self._delays
            ),
            authority={},
            read_capacity=read_capacity or self._default_read_capacity,
            write_capacity=write_capacity or self._default_write_capacity,
        )

    @synchronized
    def delete_table(self, name: str) -> None:
        self._request("DeleteTable")
        removed = self._tables.pop(name, None)
        if removed and removed.authority:
            freed = sum(
                _item_size(key, state) for key, state in removed.authority.items()
            )
            self._meter.adjust_stored(billing.DDB, -freed)

    @synchronized
    def list_tables(self) -> list[str]:
        self._request("ListTables")
        return sorted(self._tables)

    def _table(self, name: str) -> _Table:
        table = self._tables.get(name)
        if table is None:
            raise errors.NoSuchTable(name)
        return table

    # -- provisioned-throughput admission control ---------------------------

    def _admit(self, table: _Table, read_units: float, write_units: float) -> None:
        """Charge the current one-second window; throttle when exhausted.

        A throttled request consumes nothing and is not metered — the
        client backs off (advancing the simulated clock into a fresh
        window) and retries, exactly like SDK exponential backoff.
        """
        now = self._clock.now
        if now - table.window_start >= 1.0:
            table.window_start = math.floor(now)
            table.window_read_units = 0.0
            table.window_write_units = 0.0
        if table.window_read_units + read_units > table.read_capacity:
            raise errors.ProvisionedThroughputExceeded(
                f"read capacity {table.read_capacity} units/s exhausted"
            )
        if table.window_write_units + write_units > table.write_capacity:
            raise errors.ProvisionedThroughputExceeded(
                f"write capacity {table.write_capacity} units/s exhausted"
            )
        table.window_read_units += read_units
        table.window_write_units += write_units

    # -- writes -------------------------------------------------------------

    @synchronized
    def update_item(
        self, table_name: str, key: str, adds: list[tuple[str, str]]
    ) -> None:
        """ADD attribute values into the item's string sets.

        Set semantics make replays idempotent — the property A3's commit
        daemon replay correctness rests on, preserved per backend.
        Consumes write units for the *larger* of the item's size before
        and after the update (DynamoDB's update accounting).
        """
        if not adds:
            raise errors.ItemSizeLimitExceeded("update_item requires attributes")
        table = self._table(table_name)
        existing = table.authority.get(key)
        state: ItemState = dict(existing) if existing is not None else {}
        # Stored-byte accounting: an absent item occupies nothing (its
        # key bytes only start counting once the item exists).
        old_size = _item_size(key, state) if existing is not None else 0
        for name, value in adds:
            merged = set(state.get(name, ()))
            merged.add(value)
            state[name] = tuple(sorted(merged))
        new_size = _item_size(key, state)
        if new_size > units.DDB_MAX_ITEM_SIZE:
            raise errors.ItemSizeLimitExceeded(
                f"item {key!r} would be {new_size} bytes "
                f"(limit {units.DDB_MAX_ITEM_SIZE})"
            )
        write_units = _write_units_for(max(old_size, new_size))
        self._check_faults("UpdateItem")
        self._admit(table, 0.0, write_units)
        self._meter.record_request(billing.DDB, "UpdateItem")
        self._meter.record_capacity(billing.DDB, write_units=write_units)
        self._meter.record_transfer_in(
            billing.DDB,
            sum(len(n.encode()) + len(v.encode()) for n, v in adds),
        )
        self._meter.adjust_stored(billing.DDB, new_size - old_size)
        table.authority[key] = state
        table.replicas.write(key, dict(state))

    @synchronized
    def delete_item(self, table_name: str, key: str) -> None:
        """Delete an item. Idempotent: deleting an absent item succeeds
        (and still consumes the minimum write unit, as DynamoDB does)."""
        table = self._table(table_name)
        state = table.authority.get(key)
        old_size = _item_size(key, state) if state is not None else 0
        write_units = _write_units_for(old_size)
        self._check_faults("DeleteItem")
        self._admit(table, 0.0, write_units)
        self._meter.record_request(billing.DDB, "DeleteItem")
        self._meter.record_capacity(billing.DDB, write_units=write_units)
        if state is None:
            return
        del table.authority[key]
        self._meter.adjust_stored(billing.DDB, -_attr_size(state) - len(key.encode()))
        table.replicas.delete(key)

    # -- reads --------------------------------------------------------------

    @synchronized
    def get_item(
        self, table_name: str, key: str, consistent: bool = False
    ) -> ItemState:
        """Fetch one item; ``consistent=True`` reads the authoritative
        state at double the read-unit cost, ``False`` reads a replica
        (may be stale or empty) at half cost."""
        table = self._table(table_name)
        if consistent:
            state = table.authority.get(key) or {}
        else:
            state = table.replicas.read(key) or {}
        read_units = _read_units_for(_item_size(key, state), consistent)
        self._check_faults("GetItem")
        self._admit(table, read_units, 0.0)
        self._meter.record_request(billing.DDB, "GetItem")
        self._meter.record_capacity(billing.DDB, read_units=read_units)
        self._meter.record_transfer_out(billing.DDB, _attr_size(state))
        return dict(state)

    @synchronized
    def scan(
        self,
        table_name: str,
        exclusive_start_key: str | None = None,
        limit: int = SCAN_MAX_PAGE,
        consistent: bool = False,
    ) -> ScanResult:
        """One page of a full table scan, in key order.

        Read units are charged for every item *scanned* on the page (the
        whole point of scan-based filtering being expensive), aggregated
        per page before rounding — DynamoDB's scan accounting.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        table = self._table(table_name)
        if consistent:
            snapshot = [
                (key, dict(table.authority[key])) for key in sorted(table.authority)
            ]
        else:
            snapshot = [(k, dict(v)) for k, v in table.replicas.items_snapshot()]
        if exclusive_start_key is not None:
            snapshot = [(k, v) for k, v in snapshot if k > exclusive_start_key]
        page = snapshot[: min(limit, SCAN_MAX_PAGE)]
        scanned_bytes = sum(_item_size(k, v) for k, v in page)
        base = float(max(1, math.ceil(scanned_bytes / units.DDB_RCU_BYTES)))
        read_units = base if consistent else base / 2.0
        self._check_faults("Scan")
        self._admit(table, read_units, 0.0)
        self._meter.record_request(billing.DDB, "Scan")
        self._meter.record_capacity(billing.DDB, read_units=read_units)
        self._meter.record_transfer_out(
            billing.DDB, sum(len(k.encode()) + _attr_size(v) for k, v in page)
        )
        last_key = page[-1][0] if len(snapshot) > len(page) and page else None
        return ScanResult(
            items=tuple((k, dict(v)) for k, v in page),
            last_evaluated_key=last_key,
        )

    # -- oracle helpers (tests/migration verification) ----------------------

    @synchronized
    def authoritative_item(self, table_name: str, key: str) -> ItemState | None:
        state = self._tables.get(table_name)
        if state is None:
            return None
        found = state.authority.get(key)
        return dict(found) if found is not None else None

    @synchronized
    def authoritative_item_names(self, table_name: str) -> list[str]:
        table = self._tables.get(table_name)
        return sorted(table.authority) if table is not None else []

    @synchronized
    def item_count(self, table_name: str) -> int:
        table = self._tables.get(table_name)
        return len(table.authority) if table is not None else 0

    @synchronized
    def provisioned_throughput(self, table_name: str) -> tuple[int, int]:
        """(read_capacity, write_capacity) units/second for a table."""
        table = self._table(table_name)
        return table.read_capacity, table.write_capacity

    # -- internals ----------------------------------------------------------

    def _check_faults(self, op: str) -> None:
        """Fault injection, before ANY state mutation (so a retried 503
        cannot double-charge the admission window or the meter)."""
        self._faults.before_request(billing.DDB, op)

    def _request(self, op: str) -> None:
        self._check_faults(op)
        self._meter.record_request(billing.DDB, op)
