"""Simulated Amazon S3 (January 2009 semantics).

Implements the object-store behaviours the paper's architectures depend
on (§2.1):

* objects from 1 byte to 5 GB, identified by (bucket, key);
* PUT stores an object *and up to 2 KB of user metadata atomically* —
  the crux of architecture A1, whose read correctness rests on data and
  provenance travelling in one PUT;
* GET retrieves complete objects or byte ranges; HEAD retrieves only the
  metadata; COPY duplicates server-side (not billed for transfer);
  DELETE removes;
* last-writer-wins for concurrent PUTs, and **eventual consistency**: a
  GET after a PUT may observe the older object, because reads are served
  by a replica the update may not have reached yet;
* billing by request class, bytes transferred, and bytes stored.

The service raises :class:`~repro.errors.NoSuchKey` when the chosen
replica has not yet heard of an object — exactly the transient condition
the A2/A3 read protocols must retry through.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import errors, units
from repro.aws import billing
from repro.aws.consistency import DelayModel, ReplicaSet, STRONG
from repro.aws.faults import RequestFaults
from repro.blob import Blob, as_blob
from repro.clock import SimClock
from repro.concurrency import new_lock, synchronized


def metadata_size(metadata: dict[str, str]) -> int:
    """Byte size S3 charges against the 2 KB user-metadata limit."""
    return sum(len(k.encode()) + len(v.encode()) for k, v in metadata.items())


@dataclass(frozen=True)
class S3ObjectRecord:
    """Immutable stored representation of one S3 object version."""

    blob: Blob
    metadata: tuple[tuple[str, str], ...]
    etag: str
    last_modified: float

    @property
    def metadata_dict(self) -> dict[str, str]:
        return dict(self.metadata)

    @property
    def stored_size(self) -> int:
        return self.blob.size + metadata_size(self.metadata_dict)


@dataclass(frozen=True)
class S3GetResult:
    """Result of a GET: content reference plus the object's metadata."""

    bucket: str
    key: str
    blob: Blob
    metadata: dict[str, str]
    etag: str
    range: tuple[int, int]

    def bytes(self) -> bytes:
        """Materialise the requested byte range."""
        start, end = self.range
        return self.blob.read(start, end)

    @property
    def content_length(self) -> int:
        start, end = self.range
        return end - start


@dataclass(frozen=True)
class S3HeadResult:
    """Result of a HEAD: metadata only, no content transfer."""

    bucket: str
    key: str
    metadata: dict[str, str]
    etag: str
    size: int
    last_modified: float


@dataclass(frozen=True)
class S3ListResult:
    """One page of a LIST request."""

    keys: tuple[str, ...]
    is_truncated: bool
    next_marker: str | None


class S3Service:
    """The simulated S3 endpoint for one AWS account."""

    def __init__(
        self,
        clock: SimClock,
        rng: random.Random,
        meter: billing.Meter,
        faults: RequestFaults | None = None,
        delays: DelayModel = STRONG,
        n_replicas: int = 3,
    ):
        self._clock = clock
        self._rng = rng
        self._meter = meter
        self._faults = faults or RequestFaults()
        self._delays = delays
        self._n_replicas = n_replicas
        self._buckets: dict[str, ReplicaSet[S3ObjectRecord]] = {}
        # Serialises the public API for concurrent query workers (the
        # overflow-GET path); see repro.concurrency for the locking model.
        self._lock = new_lock()

    # -- bucket management -------------------------------------------------

    @synchronized
    def create_bucket(self, name: str) -> None:
        self._request("PUT")
        if name in self._buckets:
            raise errors.BucketAlreadyExists(name)
        self._buckets[name] = ReplicaSet(
            f"s3/{name}", self._clock, self._rng, self._n_replicas, self._delays
        )

    @synchronized
    def list_buckets(self) -> list[str]:
        self._request("GET")
        return sorted(self._buckets)

    def _bucket(self, name: str) -> ReplicaSet[S3ObjectRecord]:
        bucket = self._buckets.get(name)
        if bucket is None:
            raise errors.NoSuchBucket(name)
        return bucket

    # -- object operations ---------------------------------------------------

    @synchronized
    def put(
        self,
        bucket: str,
        key: str,
        content: Blob | bytes | str,
        metadata: dict[str, str] | None = None,
    ) -> str:
        """Store an object, overwriting any existing one; returns the ETag.

        Data and metadata are applied in a single authoritative write:
        this is the atomicity that architecture A1 leans on.
        """
        self._request("PUT")
        blob = as_blob(content)
        metadata = dict(metadata or {})
        if blob.size < units.S3_MIN_OBJECT_SIZE:
            raise errors.EntityTooSmall(f"{bucket}/{key}: objects must be >= 1 byte")
        if blob.size > units.S3_MAX_OBJECT_SIZE:
            raise errors.EntityTooLarge(
                f"{bucket}/{key}: {blob.size} bytes exceeds the 5GB limit"
            )
        md_size = metadata_size(metadata)
        if md_size > units.S3_MAX_METADATA_SIZE:
            raise errors.MetadataTooLarge(
                f"{bucket}/{key}: {md_size} bytes of metadata exceeds "
                f"the {units.S3_MAX_METADATA_SIZE} byte limit"
            )
        store = self._bucket(bucket)
        record = S3ObjectRecord(
            blob=blob,
            metadata=tuple(sorted(metadata.items())),
            etag=blob.md5(),
            last_modified=self._clock.now,
        )
        self._meter.record_transfer_in(billing.S3, blob.size + md_size)
        previous = store.read_authoritative(key)
        delta = record.stored_size - (previous.stored_size if previous else 0)
        self._meter.adjust_stored(billing.S3, delta)
        store.write(key, record)
        return record.etag

    @synchronized
    def get(
        self,
        bucket: str,
        key: str,
        byte_range: tuple[int, int] | None = None,
    ) -> S3GetResult:
        """Retrieve an object (or a byte range of it) from some replica."""
        self._request("GET")
        record = self._read_replica(bucket, key)
        if byte_range is None:
            start, end = 0, record.blob.size
        else:
            start, end = byte_range
            if not (0 <= start < end <= record.blob.size):
                raise errors.InvalidRange(
                    f"{bucket}/{key}: range [{start}, {end}) "
                    f"outside object of {record.blob.size} bytes"
                )
        self._meter.record_transfer_out(
            billing.S3, (end - start) + metadata_size(record.metadata_dict)
        )
        return S3GetResult(
            bucket=bucket,
            key=key,
            blob=record.blob,
            metadata=record.metadata_dict,
            etag=record.etag,
            range=(start, end),
        )

    @synchronized
    def head(self, bucket: str, key: str) -> S3HeadResult:
        """Retrieve only an object's metadata (how A1 reads provenance)."""
        self._request("HEAD")
        record = self._read_replica(bucket, key)
        self._meter.record_transfer_out(
            billing.S3, metadata_size(record.metadata_dict)
        )
        return S3HeadResult(
            bucket=bucket,
            key=key,
            metadata=record.metadata_dict,
            etag=record.etag,
            size=record.blob.size,
            last_modified=record.last_modified,
        )

    @synchronized
    def copy(
        self,
        bucket: str,
        src_key: str,
        dst_key: str,
        dst_bucket: str | None = None,
        metadata: dict[str, str] | None = None,
    ) -> str:
        """Server-side copy; not billed for data transfer (paper §5).

        ``metadata=None`` copies the source metadata (the COPY directive);
        passing a dict replaces it (the REPLACE directive), which is how
        the A3 commit daemon stamps the nonce while promoting a temporary
        object to its permanent name.
        """
        self._request("COPY")
        source = self._read_replica(bucket, src_key)
        new_metadata = source.metadata_dict if metadata is None else dict(metadata)
        md_size = metadata_size(new_metadata)
        if md_size > units.S3_MAX_METADATA_SIZE:
            raise errors.MetadataTooLarge(
                f"{dst_bucket or bucket}/{dst_key}: {md_size} bytes of metadata"
            )
        target_bucket = self._bucket(dst_bucket or bucket)
        record = S3ObjectRecord(
            blob=source.blob,
            metadata=tuple(sorted(new_metadata.items())),
            etag=source.blob.md5(),
            last_modified=self._clock.now,
        )
        previous = target_bucket.read_authoritative(dst_key)
        delta = record.stored_size - (previous.stored_size if previous else 0)
        self._meter.adjust_stored(billing.S3, delta)
        target_bucket.write(dst_key, record)
        return record.etag

    @synchronized
    def delete(self, bucket: str, key: str) -> None:
        """Delete an object. Idempotent: deleting a missing key succeeds."""
        self._request("DELETE")
        store = self._bucket(bucket)
        previous = store.read_authoritative(key)
        if previous is not None:
            self._meter.adjust_stored(billing.S3, -previous.stored_size)
            store.delete(key)

    @synchronized
    def list_keys(
        self,
        bucket: str,
        prefix: str = "",
        marker: str | None = None,
        max_keys: int = 1000,
    ) -> S3ListResult:
        """List keys (one replica's view) in lexicographic order."""
        self._request("LIST")
        store = self._bucket(bucket)
        visible = [
            k
            for k in store.keys_snapshot()
            if k.startswith(prefix) and (marker is None or k > marker)
        ]
        page = tuple(visible[:max_keys])
        truncated = len(visible) > max_keys
        self._meter.record_transfer_out(billing.S3, sum(len(k) for k in page))
        return S3ListResult(
            keys=page,
            is_truncated=truncated,
            next_marker=page[-1] if truncated and page else None,
        )

    # -- test/oracle helpers -------------------------------------------------

    @synchronized
    def exists_authoritative(self, bucket: str, key: str) -> bool:
        """Oracle check bypassing eventual consistency (tests only)."""
        return self._bucket(bucket).contains_authoritative(key)

    @synchronized
    def authoritative_keys(self, bucket: str) -> list[str]:
        return self._bucket(bucket).authoritative_keys()

    @synchronized
    def authoritative_record(self, bucket: str, key: str) -> S3ObjectRecord | None:
        return self._bucket(bucket).read_authoritative(key)

    @synchronized
    def stale_read_count(self, bucket: str) -> int:
        return self._bucket(bucket).stale_reads

    # -- internals -------------------------------------------------------------

    def _read_replica(self, bucket: str, key: str) -> S3ObjectRecord:
        record = self._bucket(bucket).read(key)
        if record is None:
            raise errors.NoSuchKey(f"{bucket}/{key}")
        return record

    def _request(self, op: str) -> None:
        self._faults.before_request(billing.S3, op)
        self._meter.record_request(billing.S3, op)
