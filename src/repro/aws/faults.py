"""Fault injection: client crashes at protocol points, transient errors.

The paper's property analysis (§3–4) is all about what happens when a
client dies between protocol steps: *"Consider the case where a client
records data and crashes before recording the provenance"*. To make those
scenarios first-class and testable, every architecture protocol in
:mod:`repro.core` executes through named **fault points**::

    self.faults.check("a2.store.after_simpledb_put")

A :class:`FaultPlan` armed for that point raises
:class:`~repro.errors.ClientCrash` there, leaving all service state
exactly as a real power failure would. Plans can also crash at the *N*-th
point encountered regardless of name, which is how the property-based
tests sweep "crash anywhere in the protocol".

:class:`RequestFaults` injects *service-side* transient failures
(``ServiceUnavailable``) so retry loops and the idempotency arguments of
§4.3 can be exercised.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ClientCrash, ServiceUnavailable


class FaultPlan:
    """Decides whether the client crashes at each named protocol point.

    A fresh plan is inert. Arm it with :meth:`crash_at` (crash when a
    specific point is reached, optionally only on its *k*-th visit) or
    :meth:`crash_at_call` (crash at the *n*-th ``check`` call overall).
    Every visited point is appended to :attr:`log`, so a dry run with an
    inert plan enumerates the protocol's crash surface.
    """

    def __init__(self) -> None:
        self.log: list[str] = []
        self._by_point: dict[str, int] = {}
        self._visits: Counter[str] = Counter()
        self._crash_call: int | None = None
        self._calls = 0

    # -- arming -----------------------------------------------------------

    def crash_at(self, point: str, visit: int = 1) -> "FaultPlan":
        """Crash when ``point`` is reached for the ``visit``-th time."""
        if visit < 1:
            raise ValueError(f"visit must be >= 1, got {visit}")
        self._by_point[point] = visit
        return self

    def crash_at_call(self, n: int) -> "FaultPlan":
        """Crash at the ``n``-th fault-point check, whatever its name."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self._crash_call = n
        return self

    def disarm(self) -> None:
        """Clear all armed crashes (the log is preserved)."""
        self._by_point.clear()
        self._crash_call = None

    # -- checking ---------------------------------------------------------

    def check(self, point: str) -> None:
        """Record the visit and crash if this point is armed."""
        self._calls += 1
        self._visits[point] += 1
        self.log.append(point)
        if self._crash_call is not None and self._calls == self._crash_call:
            self._crash_call = None
            raise ClientCrash(point)
        armed_visit = self._by_point.get(point)
        if armed_visit is not None and self._visits[point] == armed_visit:
            del self._by_point[point]
            raise ClientCrash(point)

    @property
    def points_seen(self) -> list[str]:
        """Distinct points visited, in first-visit order."""
        seen: list[str] = []
        for point in self.log:
            if point not in seen:
                seen.append(point)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(armed={sorted(self._by_point)}, "
            f"crash_call={self._crash_call}, visited={len(self.log)})"
        )


#: Shared inert plan for callers that do not inject faults.
NO_FAULTS = FaultPlan()


class RequestFaults:
    """Service-side transient failure injection.

    Services consult :meth:`before_request` at the top of each API call;
    if a failure is armed for that (service, op) pair the call raises
    :class:`~repro.errors.ServiceUnavailable` *before* mutating state,
    modelling the retryable 503s AWS clients must tolerate.
    """

    def __init__(self) -> None:
        self._armed: Counter[tuple[str, str]] = Counter()
        self._any: Counter[str] = Counter()
        self.failures_injected = 0

    def fail_next(self, service: str, op: str | None = None, times: int = 1) -> None:
        """Arm the next ``times`` requests to ``service`` (or one op) to fail."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if op is None:
            self._any[service] += times
        else:
            self._armed[(service, op)] += times

    def before_request(self, service: str, op: str) -> None:
        if self._armed[(service, op)] > 0:
            self._armed[(service, op)] -= 1
            self.failures_injected += 1
            raise ServiceUnavailable(f"{service}.{op} transiently unavailable")
        if self._any[service] > 0:
            self._any[service] -= 1
            self.failures_injected += 1
            raise ServiceUnavailable(f"{service}.{op} transiently unavailable")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        armed = {f"{s}.{o}": n for (s, o), n in self._armed.items() if n}
        armed.update({f"{s}.*": n for s, n in self._any.items() if n})
        return f"RequestFaults(armed={armed}, injected={self.failures_injected})"
