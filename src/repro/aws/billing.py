"""Request, transfer, and storage metering plus the Jan-2009 price book.

The paper's whole evaluation (§5) is denominated in what AWS bills:
*"Amazon charges for its services based on the amount of data transferred
in and out, the amount of data stored, and the number of operations
performed."* Every simulated request in this library is recorded by one
:class:`Meter`, and Tables 2 and 3 are produced by reading meter snapshots
— the analysis cannot diverge from what the simulated services actually
did.

Prices follow the figures quoted in §2 of the paper (January 2009):

* S3 — $0.15/GB-month for the first 50 TB of storage; $0.10/GB transfer
  in; $0.17/GB for the first 10 TB transferred out; $0.01 per 1,000
  PUT/COPY/POST/LIST requests; $0.01 per 10,000 GET and other requests
  (DELETE is free).
* SimpleDB — billed by machine hours ($0.14/hour), transfer, and storage
  ($1.50/GB-month). The paper normalises SimpleDB to *operation counts*
  "to compare the architectures using uniform metrics"; we record both
  operation counts and an estimated box-usage so either metric is
  available.
* SQS — $0.01 per 10,000 requests, plus transfer at the S3 rates.

The heterogeneous-backend extension adds a **DynamoDB-style** service
(:mod:`repro.aws.dynamo`) with its own billing model: every request
consumes *capacity units* sized by the item bytes it touches (1 KB per
write unit, 4 KB per strongly consistent read unit, half for eventually
consistent reads). The meter records consumed units exactly, and the
price book bills them at on-demand request-unit rates plus DynamoDB's
own storage rate — so a shard placement decision (SimpleDB vs the
DynamoDB-style store) is an auditable line item, not a blind swap.
Provisioned per-table throughput is enforced as admission control
(throttling), separately from billing.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.clock import SimClock
from repro.concurrency import new_lock, synchronized
from repro.devtools import sanitize
from repro.units import GB, SECONDS_PER_MONTH

# Service identifiers used as meter keys.
S3 = "s3"
SDB = "simpledb"
SQS = "sqs"
DDB = "dynamodb"
#: The DynamoDB-style store's global secondary indexes. A separate meter
#: key so index maintenance (write amplification), index storage, and
#: Query-on-index read units surface as their own billing lines instead
#: of hiding inside the base table's totals.
DDB_GSI = "dynamodb-gsi"
#: Range-conditioned (hash+range) Queries on composite global secondary
#: indexes. A separate meter key so the planner's headline saving — a
#: range condition reading one slice of an index partition instead of
#: the whole partition — is its own billing line, auditable next to the
#: plain equality-Query spend it displaces. Index maintenance and
#: storage stay on :data:`DDB_GSI`; only the range-Query serving costs
#: (requests, read units, transfer out) land here.
DDB_GSI_RANGE = "dynamodb-gsi-range"
#: The ElastiCache-style provenance read-cache tier
#: (:mod:`repro.aws.elasticache`). Its own meter key so the cost of
#: *having* the cache (fill puts, cached bytes held in node memory) and
#: of *hitting* it (gets, bytes served) are line items next to the
#: backend spend it displaces — the repeated-query savings claim is
#: auditable, not asserted.
ELASTICACHE = "elasticache"

#: Request classes that S3 bills at the PUT tier ($0.01 / 1,000).
S3_PUT_CLASS = frozenset({"PUT", "COPY", "POST", "LIST"})
#: Request classes that S3 bills at the GET tier ($0.01 / 10,000).
S3_GET_CLASS = frozenset({"GET", "HEAD"})
#: Requests S3 does not bill (but we still count them as operations).
S3_FREE_CLASS = frozenset({"DELETE"})

#: Estimated SimpleDB box-usage hours per request, by operation. These
#: mirror the magnitudes Amazon reported in 2009 response metadata: simple
#: writes ≈ 0.0000220 h, reads ≈ 0.0000093 h, queries scale with scanning.
SDB_BOX_USAGE_HOURS = {
    "PutAttributes": 2.20e-5,
    # Amazon's published BatchPutAttributes box-usage formula is a flat
    # base (~0.0000220 h, the same as one PutAttributes) plus a cubic
    # item-count term that is negligible at the 25-item cap — batching
    # amortises nearly the whole machine-hour charge across the batch.
    "BatchPutAttributes": 2.50e-5,
    "GetAttributes": 0.93e-5,
    "DeleteAttributes": 2.20e-5,
    "Query": 1.40e-5,
    "QueryWithAttributes": 1.90e-5,
    "Select": 1.90e-5,
    # Statistics read the query planner's cost model consults — priced
    # like the other metadata reads (GetAttributes / ListDomains).
    "DomainMetadata": 0.93e-5,
    "CreateDomain": 5.00e-4,
    "DeleteDomain": 5.00e-4,
    "ListDomains": 0.93e-5,
}


@dataclass(frozen=True)
class Usage:
    """An immutable snapshot of metered activity.

    Supports subtraction so callers can measure the delta caused by one
    phase (e.g. "operations performed by query Q2"):

    >>> before = meter.snapshot()          # doctest: +SKIP
    >>> run_query()                        # doctest: +SKIP
    >>> spent = meter.snapshot() - before  # doctest: +SKIP
    """

    requests: tuple[tuple[tuple[str, str], int], ...]
    bytes_in: tuple[tuple[str, int], ...]
    bytes_out: tuple[tuple[str, int], ...]
    byte_seconds: tuple[tuple[str, float], ...]
    stored_bytes: tuple[tuple[str, int], ...]
    box_usage_hours: float
    #: Consumed capacity units, keyed by service — only the DynamoDB
    #: style backend records these (read units sized in 4 KB steps,
    #: write units in 1 KB steps).
    read_capacity_units: tuple[tuple[str, float], ...] = ()
    write_capacity_units: tuple[tuple[str, float], ...] = ()

    # -- convenience accessors ------------------------------------------

    def request_count(self, service: str | None = None, op: str | None = None) -> int:
        """Total requests, optionally filtered by service and operation."""
        total = 0
        for (svc, operation), count in self.requests:
            if service is not None and svc != service:
                continue
            if op is not None and operation != op:
                continue
            total += count
        return total

    def transfer_in(self, service: str | None = None) -> int:
        return sum(n for svc, n in self.bytes_in if service in (None, svc))

    def transfer_out(self, service: str | None = None) -> int:
        return sum(n for svc, n in self.bytes_out if service in (None, svc))

    def stored(self, service: str | None = None) -> int:
        return sum(n for svc, n in self.stored_bytes if service in (None, svc))

    def read_units(self, service: str | None = None) -> float:
        """Consumed read capacity units (DynamoDB-style backends)."""
        return sum(
            n for svc, n in self.read_capacity_units if service in (None, svc)
        )

    def write_units(self, service: str | None = None) -> float:
        """Consumed write capacity units (DynamoDB-style backends)."""
        return sum(
            n for svc, n in self.write_capacity_units if service in (None, svc)
        )

    def gb_months(self, service: str | None = None) -> float:
        """Integrated storage in GB-months (what AWS storage pricing uses)."""
        seconds = sum(v for svc, v in self.byte_seconds if service in (None, svc))
        return seconds / GB / SECONDS_PER_MONTH

    @classmethod
    def empty(cls) -> "Usage":
        """A zero snapshot (the additive identity for :meth:`__add__`)."""
        return cls(
            requests=(),
            bytes_in=(),
            bytes_out=(),
            byte_seconds=(),
            stored_bytes=(),
            box_usage_hours=0.0,
        )

    def __add__(self, other: "Usage") -> "Usage":
        """Sum two activity snapshots (e.g. accumulate scoped spends).

        Storage *levels* don't add — ``stored_bytes`` keeps the left
        operand's levels, like :meth:`__sub__` does; the scoped usages
        migration accounting accumulates carry none anyway.
        """

        def add_counts(a, b):
            counter = Counter(dict(a))
            counter.update(dict(b))
            return tuple(sorted((k, v) for k, v in counter.items() if v))

        return Usage(
            requests=add_counts(self.requests, other.requests),
            bytes_in=add_counts(self.bytes_in, other.bytes_in),
            bytes_out=add_counts(self.bytes_out, other.bytes_out),
            byte_seconds=add_counts(self.byte_seconds, other.byte_seconds),
            stored_bytes=self.stored_bytes,
            box_usage_hours=self.box_usage_hours + other.box_usage_hours,
            read_capacity_units=add_counts(
                self.read_capacity_units, other.read_capacity_units
            ),
            write_capacity_units=add_counts(
                self.write_capacity_units, other.write_capacity_units
            ),
        )

    def __sub__(self, other: "Usage") -> "Usage":
        def diff_counts(a, b):
            counter = Counter(dict(a))
            counter.subtract(dict(b))
            return tuple(sorted((k, v) for k, v in counter.items() if v))

        return Usage(
            requests=diff_counts(self.requests, other.requests),
            bytes_in=diff_counts(self.bytes_in, other.bytes_in),
            bytes_out=diff_counts(self.bytes_out, other.bytes_out),
            byte_seconds=tuple(
                sorted(
                    (k, v)
                    for k, v in (
                        Counter(dict(self.byte_seconds))
                        - Counter(dict(other.byte_seconds))
                    ).items()
                    if v
                )
            ),
            stored_bytes=self.stored_bytes,
            box_usage_hours=self.box_usage_hours - other.box_usage_hours,
            read_capacity_units=diff_counts(
                self.read_capacity_units, other.read_capacity_units
            ),
            write_capacity_units=diff_counts(
                self.write_capacity_units, other.write_capacity_units
            ),
        )


class MeterScope:
    """A scoped accumulation of metered activity — one shard's spend.

    Created by :meth:`Meter.scoped`. While the scope is active, every
    request/transfer/box-usage record made *by the entering thread* is
    credited to the scope as well as to the meter's global totals. This
    is how the sharded query engine attributes spend to individual shard
    request streams even when many streams run concurrently: snapshot
    deltas would interleave across threads, but a scope only ever sees
    its own thread's records, so per-shard scopes sum exactly to the
    query's global meter delta.

    Storage levels (byte-seconds) are deliberately not scoped — queries
    do not change stored state, and a per-thread view of an integrated
    global level would be meaningless.
    """

    __slots__ = (
        "_requests",
        "_bytes_in",
        "_bytes_out",
        "_box_usage_hours",
        "_read_units",
        "_write_units",
    )

    def __init__(self) -> None:
        self._requests: Counter[tuple[str, str]] = Counter()
        self._bytes_in: Counter[str] = Counter()
        self._bytes_out: Counter[str] = Counter()
        self._box_usage_hours = 0.0
        self._read_units: Counter[str] = Counter()
        self._write_units: Counter[str] = Counter()

    def usage(self) -> Usage:
        """The scope's accumulated activity as an immutable snapshot."""
        return Usage(
            requests=tuple(sorted(self._requests.items())),
            bytes_in=tuple(sorted(self._bytes_in.items())),
            bytes_out=tuple(sorted(self._bytes_out.items())),
            byte_seconds=(),
            stored_bytes=(),
            box_usage_hours=self._box_usage_hours,
            read_capacity_units=tuple(sorted(self._read_units.items())),
            write_capacity_units=tuple(sorted(self._write_units.items())),
        )

    # Convenience accessors mirroring Usage (hot path for per-shard triples).

    def request_count(self) -> int:
        return sum(self._requests.values())

    def transfer_out(self) -> int:
        return sum(self._bytes_out.values())


class Meter:
    """Accumulates requests, transfer bytes, and storage byte-seconds.

    Storage is integrated against the simulated clock: each time a
    service's stored-byte total changes, the previous level is multiplied
    by the elapsed simulated time, giving exact GB-month figures for any
    billing window.

    The meter is thread-safe: all mutation and snapshotting is
    serialised behind one lock, so concurrent scatter-gather workers can
    never lose or double-count a record. :meth:`scoped` additionally
    opens a per-thread accounting scope (see :class:`MeterScope`).
    """

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._requests: Counter[tuple[str, str]] = Counter()
        self._bytes_in: Counter[str] = Counter()
        self._bytes_out: Counter[str] = Counter()
        self._stored: Counter[str] = Counter()
        self._read_units: Counter[str] = Counter()
        self._write_units: Counter[str] = Counter()
        self._byte_seconds: dict[str, float] = {}
        self._last_update: dict[str, float] = {}
        self._box_usage_hours = 0.0
        self._lock = new_lock("meter", name="meter")
        self._scope_local = threading.local()

    # -- scoped accounting -----------------------------------------------

    def _scope_stack(self) -> list[MeterScope]:
        stack = getattr(self._scope_local, "stack", None)
        if stack is None:
            stack = self._scope_local.stack = []
        return stack

    @contextmanager
    def scoped(self) -> Iterator[MeterScope]:
        """Attribute this thread's records to a fresh scope while active.

        Scopes nest: an inner scope's records are also credited to the
        enclosing one. Records made by *other* threads are never seen —
        each concurrent worker opens its own scope.
        """
        scope = MeterScope()
        stack = self._scope_stack()
        stack.append(scope)
        try:
            yield scope
        finally:
            stack.pop()

    @contextmanager
    def expect_scope(self) -> Iterator[None]:
        """Declare that this thread's records should be scope-attributed.

        The sharded query engine brackets each measured query (and each
        per-shard stream task) with this marker. Under ``REPRO_SANITIZE=1``
        any record landing on a marked thread with *no* active
        :meth:`scoped` context is reported as an unattributed-spend leak
        — spend that would silently vanish from ``per_shard`` totals.
        With the sanitizer off this is an inert no-op: no state is
        touched and the meter is byte-identical to the unsanitized
        build.
        """
        if not sanitize.enabled():
            yield
            return
        local = self._scope_local
        local.expect = getattr(local, "expect", 0) + 1
        try:
            yield
        finally:
            local.expect -= 1

    def _flag_unattributed(self, what: str) -> None:
        """Record an unattributed-spend leak (sanitizer only; see
        :meth:`expect_scope`). Called with the meter lock held; the
        expectation marker and scope stack are both thread-local."""
        if not sanitize.enabled():
            return
        if getattr(self._scope_local, "expect", 0) and not self._scope_stack():
            sanitize.record(
                "unattributed-spend",
                f"{what} recorded during a query with no active Meter.scoped "
                "context — this spend is missing from per-shard accounting",
            )

    # -- recording -------------------------------------------------------

    @synchronized
    def record_request(self, service: str, op: str, count: int = 1) -> None:
        self._flag_unattributed(f"request {service}/{op}")
        self._requests[(service, op)] += count
        box_hours = 0.0
        if service == SDB:
            box_hours = SDB_BOX_USAGE_HOURS.get(op, 1.0e-5) * count
            self._box_usage_hours += box_hours
        for scope in self._scope_stack():
            scope._requests[(service, op)] += count
            scope._box_usage_hours += box_hours

    @synchronized
    def record_transfer_in(self, service: str, nbytes: int) -> None:
        if nbytes:
            self._flag_unattributed(f"transfer-in {service}")
            self._bytes_in[service] += nbytes
            for scope in self._scope_stack():
                scope._bytes_in[service] += nbytes

    @synchronized
    def record_transfer_out(self, service: str, nbytes: int) -> None:
        if nbytes:
            self._flag_unattributed(f"transfer-out {service}")
            self._bytes_out[service] += nbytes
            for scope in self._scope_stack():
                scope._bytes_out[service] += nbytes

    @synchronized
    def record_capacity(
        self, service: str, read_units: float = 0.0, write_units: float = 0.0
    ) -> None:
        """Record consumed capacity units (DynamoDB-style metering)."""
        if read_units or write_units:
            self._flag_unattributed(f"capacity {service}")
        if read_units:
            self._read_units[service] += read_units
        if write_units:
            self._write_units[service] += write_units
        for scope in self._scope_stack():
            scope._read_units[service] += read_units
            scope._write_units[service] += write_units

    @synchronized
    def record_box_usage(self, hours: float) -> None:
        """Add explicit SimpleDB machine time (e.g. for expensive scans)."""
        self._flag_unattributed("box-usage")
        self._box_usage_hours += hours
        for scope in self._scope_stack():
            scope._box_usage_hours += hours

    @synchronized
    def adjust_stored(self, service: str, delta_bytes: int) -> None:
        """Change a service's stored-byte level, integrating time first."""
        self._integrate(service)
        self._stored[service] += delta_bytes
        if self._stored[service] < 0:
            raise ValueError(
                f"stored bytes for {service} went negative "
                f"({self._stored[service]}); double-counted a delete?"
            )

    def _integrate(self, service: str) -> None:
        now = self._clock.now
        last = self._last_update.get(service, now)
        level = self._stored[service]
        self._byte_seconds[service] = (
            self._byte_seconds.get(service, 0.0) + level * (now - last)
        )
        self._last_update[service] = now

    # -- reading ----------------------------------------------------------

    @synchronized
    def snapshot(self) -> Usage:
        for service in list(self._stored):
            self._integrate(service)
        return Usage(
            requests=tuple(sorted(self._requests.items())),
            bytes_in=tuple(sorted(self._bytes_in.items())),
            bytes_out=tuple(sorted(self._bytes_out.items())),
            byte_seconds=tuple(sorted(self._byte_seconds.items())),
            stored_bytes=tuple(sorted(self._stored.items())),
            box_usage_hours=self._box_usage_hours,
            read_capacity_units=tuple(sorted(self._read_units.items())),
            write_capacity_units=tuple(sorted(self._write_units.items())),
        )

    @synchronized
    def stored_bytes(self, service: str) -> int:
        """Current stored-byte level for a service."""
        return self._stored[service]


@dataclass(frozen=True)
class PriceBook:
    """AWS prices as of January 2009 (USD), as quoted in paper §2.

    Tiered rates above the first tier are retained for completeness but
    the paper's dataset never leaves tier one (1.27 GB ≪ 50 TB).
    """

    s3_storage_gb_month: float = 0.15          # first 50 TB
    s3_transfer_in_gb: float = 0.10
    s3_transfer_out_gb: float = 0.17           # first 10 TB
    s3_put_class_per_1000: float = 0.01        # PUT, COPY, POST, LIST
    s3_get_class_per_10000: float = 0.01       # GET and others
    sdb_machine_hour: float = 0.14
    sdb_storage_gb_month: float = 1.50
    sdb_transfer_in_gb: float = 0.10
    sdb_transfer_out_gb: float = 0.17
    sqs_per_10000_requests: float = 0.01
    sqs_transfer_in_gb: float = 0.10
    sqs_transfer_out_gb: float = 0.17
    # DynamoDB-style backend (heterogeneous-placement extension). Billed
    # by consumed request units at on-demand rates, plus its own storage
    # rate; anachronistic next to the 2009 services, flagged as such in
    # the module docstring.
    ddb_read_per_million_units: float = 0.25
    ddb_write_per_million_units: float = 1.25
    ddb_storage_gb_month: float = 0.25
    ddb_transfer_in_gb: float = 0.10
    ddb_transfer_out_gb: float = 0.17
    #: Per-API-call overhead, SQS-style. Capacity units price the bytes
    #: written/read regardless of batching; this line prices the *round
    #: trips*, which is what ``BatchWriteItem`` amortises.
    ddb_per_10000_requests: float = 0.01
    # ElastiCache-style read-cache tier (anachronistic next to the 2009
    # trio, like the DynamoDB-style store; flagged in the module
    # docstring). Requests are cheap memcached-protocol round trips;
    # cached bytes are priced as node memory, well above disk storage —
    # the capacity/eviction trade-off has a real price attached.
    cache_per_10000_requests: float = 0.005
    cache_storage_gb_month: float = 8.00
    cache_transfer_in_gb: float = 0.10
    cache_transfer_out_gb: float = 0.17

    def cost(self, usage: Usage) -> "CostReport":
        """Convert a usage snapshot to an itemised USD cost report."""
        lines: list[tuple[str, float]] = []

        s3_put_ops = sum(
            count
            for (svc, op), count in usage.requests
            if svc == S3 and op in S3_PUT_CLASS
        )
        s3_get_ops = sum(
            count
            for (svc, op), count in usage.requests
            if svc == S3 and op in S3_GET_CLASS
        )
        lines.append(("s3.requests.put_class", s3_put_ops / 1000 * self.s3_put_class_per_1000))
        lines.append(("s3.requests.get_class", s3_get_ops / 10000 * self.s3_get_class_per_10000))
        lines.append(("s3.transfer.in", usage.transfer_in(S3) / GB * self.s3_transfer_in_gb))
        lines.append(("s3.transfer.out", usage.transfer_out(S3) / GB * self.s3_transfer_out_gb))
        lines.append(("s3.storage", usage.gb_months(S3) * self.s3_storage_gb_month))

        lines.append(("simpledb.machine_hours", usage.box_usage_hours * self.sdb_machine_hour))
        lines.append(("simpledb.transfer.in", usage.transfer_in(SDB) / GB * self.sdb_transfer_in_gb))
        lines.append(("simpledb.transfer.out", usage.transfer_out(SDB) / GB * self.sdb_transfer_out_gb))
        lines.append(("simpledb.storage", usage.gb_months(SDB) * self.sdb_storage_gb_month))

        lines.append((
            "dynamodb.read_units",
            usage.read_units(DDB) / 1_000_000 * self.ddb_read_per_million_units,
        ))
        lines.append((
            "dynamodb.write_units",
            usage.write_units(DDB) / 1_000_000 * self.ddb_write_per_million_units,
        ))
        lines.append((
            "dynamodb.requests",
            usage.request_count(DDB) / 10000 * self.ddb_per_10000_requests,
        ))
        lines.append(("dynamodb.transfer.in", usage.transfer_in(DDB) / GB * self.ddb_transfer_in_gb))
        lines.append(("dynamodb.transfer.out", usage.transfer_out(DDB) / GB * self.ddb_transfer_out_gb))
        lines.append(("dynamodb.storage", usage.gb_months(DDB) * self.ddb_storage_gb_month))
        # Global secondary indexes: same request-unit and storage rates
        # as the base table, but itemised separately so the price of
        # *having* an index (write amplification + projected storage)
        # and of *querying* it are auditable line by line.
        lines.append((
            "dynamodb.gsi.read_units",
            usage.read_units(DDB_GSI) / 1_000_000 * self.ddb_read_per_million_units,
        ))
        lines.append((
            "dynamodb.gsi.write_units",
            usage.write_units(DDB_GSI) / 1_000_000 * self.ddb_write_per_million_units,
        ))
        lines.append((
            "dynamodb.gsi.transfer.out",
            usage.transfer_out(DDB_GSI) / GB * self.ddb_transfer_out_gb,
        ))
        lines.append((
            "dynamodb.gsi.storage",
            usage.gb_months(DDB_GSI) * self.ddb_storage_gb_month,
        ))
        # Range-conditioned Queries on composite (hash+range) indexes:
        # same unit rates as the equality-GSI lines, itemised separately
        # so the planner's range-vs-equality access-path choice is a
        # visible line, not a blended total. Like equality GSI Queries,
        # request counts are metered but priced into read units — there
        # is deliberately no ``.requests`` line for either.
        lines.append((
            "dynamodb.gsi.range.read_units",
            usage.read_units(DDB_GSI_RANGE) / 1_000_000 * self.ddb_read_per_million_units,
        ))
        lines.append((
            "dynamodb.gsi.range.transfer.out",
            usage.transfer_out(DDB_GSI_RANGE) / GB * self.ddb_transfer_out_gb,
        ))

        # The read-cache tier: request volume, transfer, and node-memory
        # storage. Invalidations piggyback on the write path's existing
        # round trips (see repro.aws.elasticache) so they carry no
        # request line of their own.
        lines.append((
            "elasticache.requests",
            usage.request_count(ELASTICACHE) / 10000 * self.cache_per_10000_requests,
        ))
        lines.append((
            "elasticache.transfer.in",
            usage.transfer_in(ELASTICACHE) / GB * self.cache_transfer_in_gb,
        ))
        lines.append((
            "elasticache.transfer.out",
            usage.transfer_out(ELASTICACHE) / GB * self.cache_transfer_out_gb,
        ))
        lines.append((
            "elasticache.storage",
            usage.gb_months(ELASTICACHE) * self.cache_storage_gb_month,
        ))

        sqs_ops = usage.request_count(SQS)
        lines.append(("sqs.requests", sqs_ops / 10000 * self.sqs_per_10000_requests))
        lines.append(("sqs.transfer.in", usage.transfer_in(SQS) / GB * self.sqs_transfer_in_gb))
        lines.append(("sqs.transfer.out", usage.transfer_out(SQS) / GB * self.sqs_transfer_out_gb))

        return CostReport(lines=tuple(lines))


@dataclass(frozen=True)
class CostReport:
    """Itemised USD costs derived from a :class:`Usage` snapshot."""

    lines: tuple[tuple[str, float], ...] = field(default_factory=tuple)

    @property
    def total(self) -> float:
        return sum(amount for _, amount in self.lines)

    def by_service(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for label, amount in self.lines:
            service = label.split(".", 1)[0]
            totals[service] = totals.get(service, 0.0) + amount
        return totals

    def render(self) -> str:
        """Human-readable, line-itemed report.

        The label column is sized to the rows actually printed (zero
        amount lines are dropped), so adding billing lines for services
        a deployment never touched cannot reflow its bill.
        """
        printed = [(label, amount) for label, amount in self.lines if amount]
        width = max((len(label) for label, _ in printed), default=10)
        rows = [
            f"  {label:<{width}}  ${amount:10.4f}" for label, amount in printed
        ]
        rows.append(f"  {'TOTAL':<{width}}  ${self.total:10.4f}")
        return "\n".join(rows)
