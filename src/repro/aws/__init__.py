"""Simulated Amazon Web Services (January 2009 feature snapshot).

This subpackage stands in for the live AWS endpoints the paper measures
against (see DESIGN.md §2 for the substitution argument). It provides:

* :mod:`repro.aws.s3` — Simple Storage Service,
* :mod:`repro.aws.simpledb` — SimpleDB (with :mod:`repro.aws.sdb_query`
  implementing the 2009 bracket query language and a SELECT subset),
* :mod:`repro.aws.sqs` — Simple Queue Service,
* :mod:`repro.aws.consistency` — the shared eventual-consistency engine,
* :mod:`repro.aws.billing` — request/byte/byte-hour metering and the
  January-2009 price book,
* :mod:`repro.aws.faults` — crash-point and transient-failure injection,
* :mod:`repro.aws.elasticache` — the ElastiCache-style provenance
  read-cache tier and its cache authority,
* :mod:`repro.aws.account` — one object wiring all of the above together.
"""

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.billing import Meter, PriceBook, Usage
from repro.aws.elasticache import ReadCacheAuthority
from repro.aws.faults import FaultPlan, RequestFaults, NO_FAULTS
from repro.aws.s3 import S3Service
from repro.aws.simpledb import SimpleDBService
from repro.aws.sqs import SQSService

__all__ = [
    "AWSAccount",
    "ConsistencyConfig",
    "Meter",
    "PriceBook",
    "Usage",
    "FaultPlan",
    "RequestFaults",
    "NO_FAULTS",
    "ReadCacheAuthority",
    "S3Service",
    "SimpleDBService",
    "SQSService",
]
