"""Simulated Amazon SimpleDB (January 2009 semantics).

Implements the indexing/query service of paper §2.2:

* data model of **domains → items → attribute-value pairs**, where an
  item may hold multiple values per attribute name;
* limits: 1 KB per attribute name and value, 256 attribute-value pairs
  per item, 100 attributes per ``PutAttributes`` call — the limits that
  force architecture A2 to spill large provenance values to S3 and to
  batch its writes;
* automatic indexing and three query primitives — ``Query``,
  ``QueryWithAttributes`` and ``Select`` — with result pagination;
* **idempotency**: re-running ``PutAttributes`` with the same attributes
  or ``DeleteAttributes`` on absent attributes is not an error (§2.2),
  which the A3 commit daemon's replay correctness rests on;
* **eventual consistency**: an item inserted may not appear in a query
  run immediately afterwards, because queries execute against a replica
  snapshot.

Machine time (the real SimpleDB billing unit) is estimated per request
and recorded on the meter; the paper normalises to operation counts, and
the meter records those too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import errors, units
from repro.aws import billing
from repro.aws.consistency import DelayModel, ReplicaSet, STRONG
from repro.aws.faults import RequestFaults
from repro.aws.sdb_query import (
    CompiledQuery,
    SelectStatement,
    parse_query,
    parse_select,
    run_query,
)
from repro.clock import SimClock
from repro.concurrency import new_lock, synchronized

#: Items an attribute map: name -> tuple of distinct values (sorted).
ItemState = dict[str, tuple[str, ...]]

#: Maximum items returned per Query/QueryWithAttributes page (2009 limit).
QUERY_MAX_PAGE = 250
#: Maximum items returned per Select page.
SELECT_MAX_PAGE = 250

#: Box-usage machine hours each query request charges per item scanned —
#: SimpleDB billed more machine time for broader queries. Named so the
#: query planner's cost model and the meter share one number.
SCAN_HOURS_PER_ITEM = 2.0e-8


@dataclass(frozen=True)
class Attribute:
    """One attribute in a PutAttributes/DeleteAttributes call."""

    name: str
    value: str
    replace: bool = False


@dataclass(frozen=True)
class QueryResult:
    """A page of item names (Query)."""

    item_names: tuple[str, ...]
    next_token: str | None


@dataclass(frozen=True)
class QueryWithAttributesResult:
    """A page of items with their attributes (QueryWithAttributes/Select)."""

    items: tuple[tuple[str, dict[str, tuple[str, ...]]], ...]
    next_token: str | None

    @property
    def item_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.items)


@dataclass(frozen=True)
class SelectResult:
    """Result of a Select statement (items or a count)."""

    items: tuple[tuple[str, dict[str, tuple[str, ...]]], ...]
    next_token: str | None
    count: int | None = None


def _attr_size(state: ItemState) -> int:
    return sum(
        len(name.encode()) + len(value.encode())
        for name, values in state.items()
        for value in values
    )


def _attr_count(state: ItemState) -> int:
    return sum(len(values) for values in state.values())


class SimpleDBService:
    """The simulated SimpleDB endpoint for one AWS account."""

    def __init__(
        self,
        clock: SimClock,
        rng: random.Random,
        meter: billing.Meter,
        faults: RequestFaults | None = None,
        delays: DelayModel = STRONG,
        n_replicas: int = 3,
    ):
        self._clock = clock
        self._rng = rng
        self._meter = meter
        self._faults = faults or RequestFaults()
        self._delays = delays
        self._n_replicas = n_replicas
        self._domains: dict[str, ReplicaSet[ItemState]] = {}
        # Authoritative attribute state used for read-modify-write; the
        # ReplicaSet holds copies for eventually consistent reads.
        self._authority: dict[str, dict[str, ItemState]] = {}
        # Incremental per-domain statistics (what DomainMetadata reports
        # and the query planner's cost model consumes): total attribute
        # bytes, plus per attribute name a refcount of the items holding
        # each value — every write path folds its own old/new diff in,
        # so the figures are exact without ever scanning.
        self._stat_bytes: dict[str, int] = {}
        self._stat_values: dict[str, dict[str, dict[str, int]]] = {}
        # Serialises the public API: concurrent scatter-gather workers
        # observe each request as atomic, exactly as the single-threaded
        # simulation always has (see repro.concurrency).
        self._lock = new_lock()

    # -- domain management --------------------------------------------------

    @synchronized
    def create_domain(self, name: str) -> None:
        """Create a domain. Idempotent, as in real SimpleDB."""
        self._request("CreateDomain")
        if name not in self._domains:
            self._domains[name] = ReplicaSet(
                f"sdb/{name}", self._clock, self._rng, self._n_replicas, self._delays
            )
            self._authority[name] = {}
            self._stat_bytes[name] = 0
            self._stat_values[name] = {}

    @synchronized
    def delete_domain(self, name: str) -> None:
        self._request("DeleteDomain")
        self._domains.pop(name, None)
        self._stat_bytes.pop(name, None)
        self._stat_values.pop(name, None)
        removed = self._authority.pop(name, None)
        if removed:
            freed = sum(_attr_size(state) for state in removed.values())
            self._meter.adjust_stored(billing.SDB, -freed)

    @synchronized
    def list_domains(self) -> list[str]:
        self._request("ListDomains")
        return sorted(self._domains)

    def _domain(self, name: str) -> ReplicaSet[ItemState]:
        domain = self._domains.get(name)
        if domain is None:
            raise errors.NoSuchDomain(name)
        return domain

    @synchronized
    def domain_metadata(self, name: str) -> dict:
        """Domain statistics — the DomainMetadata call real SimpleDB
        offered, and what the query planner's cost model consumes.

        Reports the authoritative item count, total attribute bytes,
        and per attribute name how many distinct values exist and how
        many (item, value) pairs hold it — all maintained incrementally
        by the write paths (never scanned), so the call is a cheap
        metered metadata read (``DomainMetadata`` box-usage tier, no
        per-item machine time).
        """
        self._domain(name)
        self._request("DomainMetadata")
        return {
            "item_count": len(self._authority[name]),
            "item_bytes": self._stat_bytes[name],
            "attributes": {
                attr: {
                    "distinct_values": len(refcounts),
                    "value_count": sum(refcounts.values()),
                }
                for attr, refcounts in self._stat_values[name].items()
            },
        }

    def _stat_apply(
        self, domain: str, old_state: ItemState, new_state: ItemState
    ) -> None:
        """Fold one item's old→new diff into the domain statistics.
        Called with the service lock held, from every write path."""
        self._stat_bytes[domain] += _attr_size(new_state) - _attr_size(old_state)
        values = self._stat_values[domain]
        for attr in set(old_state) | set(new_state):
            old_values = set(old_state.get(attr, ()))
            new_values = set(new_state.get(attr, ()))
            if old_values == new_values:
                continue
            refcounts = values.setdefault(attr, {})
            for value in new_values - old_values:
                refcounts[value] = refcounts.get(value, 0) + 1
            for value in old_values - new_values:
                remaining = refcounts.get(value, 0) - 1
                if remaining > 0:
                    refcounts[value] = remaining
                else:
                    refcounts.pop(value, None)
            if not refcounts:
                values.pop(attr, None)

    # -- writes ---------------------------------------------------------------

    @synchronized
    def put_attributes(
        self,
        domain: str,
        item_name: str,
        attributes: list[Attribute | tuple[str, str]],
    ) -> None:
        """Insert or modify an item's attributes (≤100 per call).

        Values accumulate as a set unless ``replace`` is set for a name,
        so repeating a call cannot create duplicates — the idempotency
        §2.2 documents and §4.3 exploits.
        """
        self._request("PutAttributes")
        attrs = self._validated_attrs("PutAttributes", attributes)
        store = self._domain(domain)
        authority = self._authority[domain]
        old_state = authority.get(item_name, {})
        state = self._merged_state(old_state, attrs, item_name)
        old_size = _attr_size(dict(old_state))
        self._meter.record_transfer_in(
            billing.SDB,
            sum(len(a.name.encode()) + len(a.value.encode()) for a in attrs),
        )
        self._meter.adjust_stored(billing.SDB, _attr_size(state) - old_size)
        self._stat_apply(domain, old_state, state)
        authority[item_name] = state
        store.write(item_name, dict(state))

    @synchronized
    def batch_put_attributes(
        self,
        domain: str,
        items: list[tuple[str, list[Attribute | tuple[str, str]]]],
    ) -> None:
        """Insert or modify up to 25 items in one round trip.

        Per-item semantics match :meth:`put_attributes` exactly — the
        same set-merge accumulation, size caps, and idempotent replays —
        but the whole batch costs one metered request (and roughly one
        request's machine time; see ``billing.SDB_BOX_USAGE_HOURS``).
        Every entry is validated against its post-merge state before
        anything commits, so the call is all-or-nothing: replaying a
        failed batch cannot half-apply. Entries repeating an item name
        merge sequentially in call order.
        """
        self._request("BatchPutAttributes")
        if not items:
            raise errors.EmptyBatchRequest("BatchPutAttributes requires items")
        if len(items) > units.SDB_MAX_BATCH_PUT_ITEMS:
            raise errors.NumberSubmittedItemsExceeded(
                f"{len(items)} items in one call (limit "
                f"{units.SDB_MAX_BATCH_PUT_ITEMS})"
            )
        store = self._domain(domain)
        authority = self._authority[domain]
        staged: dict[str, ItemState] = {}
        transfer = 0
        for item_name, attributes in items:
            attrs = self._validated_attrs("BatchPutAttributes", attributes)
            base = staged.get(item_name)
            if base is None:
                base = dict(authority.get(item_name, {}))
            staged[item_name] = self._merged_state(base, attrs, item_name)
            transfer += sum(
                len(a.name.encode()) + len(a.value.encode()) for a in attrs
            )
        self._meter.record_transfer_in(billing.SDB, transfer)
        for item_name, state in staged.items():
            old_state = authority.get(item_name, {})
            old_size = _attr_size(dict(old_state))
            self._meter.adjust_stored(billing.SDB, _attr_size(state) - old_size)
            self._stat_apply(domain, old_state, state)
            authority[item_name] = state
            store.write(item_name, dict(state))

    @staticmethod
    def _validated_attrs(
        op: str, attributes: list[Attribute | tuple[str, str]]
    ) -> list[Attribute]:
        """Normalise one item's attribute list, enforcing the per-call caps."""
        attrs = [a if isinstance(a, Attribute) else Attribute(*a) for a in attributes]
        if not attrs:
            raise errors.AttributeValueTooLong(f"{op} requires attributes")
        if len(attrs) > units.SDB_MAX_ATTRS_PER_CALL:
            raise errors.NumberSubmittedAttributesExceeded(
                f"{len(attrs)} attributes in one call (limit "
                f"{units.SDB_MAX_ATTRS_PER_CALL})"
            )
        for attr in attrs:
            if len(attr.name.encode()) > units.SDB_MAX_NAME_SIZE:
                raise errors.AttributeValueTooLong(f"attribute name {attr.name[:40]!r}")
            if len(attr.value.encode()) > units.SDB_MAX_VALUE_SIZE:
                raise errors.AttributeValueTooLong(
                    f"value for {attr.name!r} is {len(attr.value.encode())} bytes "
                    f"(limit {units.SDB_MAX_VALUE_SIZE})"
                )
        return attrs

    @staticmethod
    def _merged_state(
        state: ItemState, attrs: list[Attribute], item_name: str
    ) -> ItemState:
        """Apply a put's set-merge semantics, enforcing the per-item cap."""
        state = dict(state)
        replaced: set[str] = set()
        for attr in attrs:
            existing = () if attr.replace and attr.name not in replaced else state.get(attr.name, ())
            if attr.replace:
                replaced.add(attr.name)
            merged = set(existing)
            merged.add(attr.value)
            state[attr.name] = tuple(sorted(merged))
        if _attr_count(state) > units.SDB_MAX_ATTRS_PER_ITEM:
            raise errors.NumberItemAttributesExceeded(
                f"item {item_name!r} would hold {_attr_count(state)} attributes "
                f"(limit {units.SDB_MAX_ATTRS_PER_ITEM})"
            )
        return state

    @synchronized
    def delete_attributes(
        self,
        domain: str,
        item_name: str,
        attributes: list[Attribute | tuple[str, str] | str] | None = None,
    ) -> None:
        """Delete attributes, or the whole item when ``attributes`` is None.

        Idempotent: deleting absent attributes or items succeeds silently.
        """
        self._request("DeleteAttributes")
        store = self._domain(domain)
        authority = self._authority[domain]
        state = authority.get(item_name)
        if state is None:
            return
        old_size = _attr_size(state)
        if attributes is None:
            del authority[item_name]
            self._meter.adjust_stored(billing.SDB, -old_size)
            self._stat_apply(domain, state, {})
            store.delete(item_name)
            return
        new_state: ItemState = dict(state)
        for attr in attributes:
            if isinstance(attr, str):
                new_state.pop(attr, None)
                continue
            if isinstance(attr, tuple):
                attr = Attribute(*attr)
            values = new_state.get(attr.name)
            if values is None:
                continue
            remaining = tuple(v for v in values if v != attr.value)
            if remaining:
                new_state[attr.name] = remaining
            else:
                new_state.pop(attr.name, None)
        if new_state:
            authority[item_name] = new_state
            store.write(item_name, dict(new_state))
        else:
            del authority[item_name]
            store.delete(item_name)
        self._meter.adjust_stored(billing.SDB, _attr_size(new_state) - old_size)
        self._stat_apply(domain, state, new_state)

    # -- reads -----------------------------------------------------------------

    @synchronized
    def get_attributes(
        self,
        domain: str,
        item_name: str,
        attribute_names: list[str] | None = None,
    ) -> dict[str, tuple[str, ...]]:
        """Fetch an item's attributes from a replica (may be stale/empty)."""
        self._request("GetAttributes")
        store = self._domain(domain)
        state = store.read(item_name) or {}
        if attribute_names is not None:
            wanted = set(attribute_names)
            state = {k: v for k, v in state.items() if k in wanted}
        self._meter.record_transfer_out(billing.SDB, _attr_size(state))
        return dict(state)

    @synchronized
    def query(
        self,
        domain: str,
        expression: str | None = None,
        max_items: int = QUERY_MAX_PAGE,
        next_token: str | None = None,
    ) -> QueryResult:
        """Return names of items matching a bracket-language expression."""
        self._request("Query")
        matched = self._execute(domain, parse_query(expression), next_token)
        page, token = self._paginate(matched, min(max_items, QUERY_MAX_PAGE))
        names = tuple(name for name, _ in page)
        self._meter.record_transfer_out(billing.SDB, sum(len(n) for n in names))
        return QueryResult(item_names=names, next_token=token)

    @synchronized
    def query_with_attributes(
        self,
        domain: str,
        expression: str | None = None,
        attribute_names: list[str] | None = None,
        max_items: int = QUERY_MAX_PAGE,
        next_token: str | None = None,
    ) -> QueryWithAttributesResult:
        """Return matching items together with (a subset of) attributes."""
        self._request("QueryWithAttributes")
        matched = self._execute(domain, parse_query(expression), next_token)
        page, token = self._paginate(matched, min(max_items, QUERY_MAX_PAGE))
        wanted = None if attribute_names is None else set(attribute_names)
        projected: list[tuple[str, dict[str, tuple[str, ...]]]] = []
        out_bytes = 0
        for name, attrs in page:
            if wanted is not None:
                attrs = {k: v for k, v in attrs.items() if k in wanted}
            projected.append((name, dict(attrs)))
            out_bytes += len(name) + _attr_size(dict(attrs))
        self._meter.record_transfer_out(billing.SDB, out_bytes)
        return QueryWithAttributesResult(items=tuple(projected), next_token=token)

    @synchronized
    def select(
        self,
        statement: str | SelectStatement,
        next_token: str | None = None,
    ) -> SelectResult:
        """Run a SELECT statement (2009 subset; see sdb_query)."""
        self._request("Select")
        parsed = parse_select(statement) if isinstance(statement, str) else statement
        matched = self._execute(parsed.domain, parsed.query, next_token)
        if parsed.is_count:
            return SelectResult(items=(), next_token=None, count=len(matched))
        limit = parsed.limit if parsed.limit is not None else SELECT_MAX_PAGE
        page, token = self._paginate(matched, min(limit, SELECT_MAX_PAGE))
        projected: list[tuple[str, dict[str, tuple[str, ...]]]] = []
        out_bytes = 0
        for name, attrs in page:
            if parsed.projection == ("itemName()",):
                attrs = {}
            elif parsed.projection != ("*",):
                wanted = set(parsed.projection)
                attrs = {k: v for k, v in attrs.items() if k in wanted}
            projected.append((name, dict(attrs)))
            out_bytes += len(name) + _attr_size(dict(attrs))
        self._meter.record_transfer_out(billing.SDB, out_bytes)
        return SelectResult(items=tuple(projected), next_token=token)

    # -- oracle helpers (tests/recovery scans) ----------------------------------

    @synchronized
    def authoritative_item(self, domain: str, item_name: str) -> ItemState | None:
        state = self._authority.get(domain, {}).get(item_name)
        return dict(state) if state is not None else None

    @synchronized
    def authoritative_item_names(self, domain: str) -> list[str]:
        return sorted(self._authority.get(domain, {}))

    @synchronized
    def item_count(self, domain: str) -> int:
        """Authoritative number of items (used by the analysis module)."""
        return len(self._authority.get(domain, {}))

    # -- internals ----------------------------------------------------------------

    def _execute(
        self,
        domain: str,
        query: CompiledQuery,
        next_token: str | None,
    ) -> list[tuple[str, ItemState]]:
        store = self._domain(domain)
        snapshot = list(store.items_snapshot())
        # Box usage grows with the number of items scanned, mirroring how
        # SimpleDB charged more machine time for broader queries.
        self._meter.record_box_usage(len(snapshot) * SCAN_HOURS_PER_ITEM)
        matched = run_query(snapshot, query)
        if next_token is not None:
            matched = self._resume(matched, next_token)
        return matched

    @staticmethod
    def _resume(
        matched: list[tuple[str, ItemState]], next_token: str
    ) -> list[tuple[str, ItemState]]:
        if not next_token.startswith("after:"):
            raise errors.InvalidNextToken(next_token)
        last_name = next_token[len("after:"):]
        return [(n, a) for n, a in matched if n > last_name]

    @staticmethod
    def _paginate(
        matched: list[tuple[str, ItemState]], max_items: int
    ) -> tuple[list[tuple[str, ItemState]], str | None]:
        if max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {max_items}")
        page = matched[:max_items]
        token = f"after:{page[-1][0]}" if len(matched) > max_items and page else None
        return page, token

    def _request(self, op: str) -> None:
        self._faults.before_request(billing.SDB, op)
        self._meter.record_request(billing.SDB, op)
