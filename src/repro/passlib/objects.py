"""PASS objects: pnode-identified files, processes, and pipes.

PASS assigns every object a *pnode* (a stable numeric identity) and
tracks per-version provenance. Persistent objects (files) are related to
one another through transient objects (processes, pipes), so transient
objects carry provenance too (§2.4).

A :class:`PassObject` accumulates records for its *current* version;
:mod:`repro.passlib.versioning` decides when a new version must be cut
to preserve causality, and :mod:`repro.passlib.capture` snapshots the
accumulated records into immutable bundles at flush time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.passlib.records import Attr, ObjectRef, ProvenanceBundle, ProvenanceRecord


class Kind:
    """Object kinds, matching the ``type`` record values the paper shows."""

    FILE = "file"
    PROCESS = "process"
    PIPE = "pipe"

    ALL = (FILE, PROCESS, PIPE)
    TRANSIENT = frozenset({PROCESS, PIPE})


_pnode_counter = itertools.count(1)


def _next_pnode() -> int:
    return next(_pnode_counter)


@dataclass
class PassObject:
    """One PASS object and its in-flight (not yet flushed) provenance."""

    name: str
    kind: str
    pnode: int = field(default_factory=_next_pnode)
    version: int = 1
    #: The current version has been observed (read, or depended upon by a
    #: flushed descendant); further writes must cut a new version.
    frozen: bool = False
    #: Records accumulated for the current version.
    pending: list[ProvenanceRecord] = field(default_factory=list)
    #: Finalised record lists of superseded versions, keyed by version.
    history: dict[int, tuple[ProvenanceRecord, ...]] = field(default_factory=dict)
    #: Versions whose bundles were already handed to a flush event.
    flushed_versions: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.kind not in Kind.ALL:
            raise ValueError(f"unknown object kind {self.kind!r}")

    @property
    def ref(self) -> ObjectRef:
        """Reference to the current version."""
        return ObjectRef(self.name, self.version)

    @property
    def is_transient(self) -> bool:
        return self.kind in Kind.TRANSIENT

    # -- record accumulation ---------------------------------------------

    def add(self, attribute: str, value: "str | ObjectRef") -> ProvenanceRecord:
        """Attach a record to the current version."""
        record = ProvenanceRecord(self.ref, attribute, value)
        self.pending.append(record)
        return record

    def add_input(self, ancestor: ObjectRef) -> ProvenanceRecord:
        return self.add(Attr.INPUT, ancestor)

    def has_input(self, ancestor: ObjectRef) -> bool:
        """True if the current version already depends on ``ancestor``."""
        return any(
            record.attribute == Attr.INPUT and record.value == ancestor
            for record in self.pending
        )

    # -- versioning ---------------------------------------------------------

    def freeze(self) -> None:
        """Mark the current version as observed (see versioning module)."""
        self.frozen = True

    def bump_version(self) -> ObjectRef:
        """Cut a new version linked to the previous one.

        The superseded version's records are finalised into ``history``
        (they can still be flushed later); the new version records
        ``prev_version -> old ref``, the ancestry edge PASS uses to chain
        versions of the same object.
        """
        previous = self.ref
        self.history[self.version] = tuple(self.pending)
        self.version += 1
        self.frozen = False
        self.pending = []
        self.add(Attr.VERSION_OF, previous)
        return self.ref

    # -- flushing -------------------------------------------------------------

    def snapshot_bundle(self, version: int | None = None) -> ProvenanceBundle:
        """Freeze a version's records into an immutable bundle.

        Defaults to the current version; superseded versions come from
        ``history`` (needed when a flush ships a transient ancestor whose
        object has since moved on to a newer version).
        """
        if version is None or version == self.version:
            subject, records = self.ref, tuple(self.pending)
        else:
            try:
                records = self.history[version]
            except KeyError:
                raise ValueError(
                    f"{self.name!r} has no finalised version {version}"
                ) from None
            subject = ObjectRef(self.name, version)
        return ProvenanceBundle(subject=subject, kind=self.kind, records=records)

    def mark_flushed(self) -> None:
        self.flushed_versions.add(self.version)

    @property
    def current_version_flushed(self) -> bool:
        return self.version in self.flushed_versions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PassObject({self.name!r}, {self.kind}, pnode={self.pnode}, "
            f"v{self.version}{'*' if self.frozen else ''}, "
            f"{len(self.pending)} pending)"
        )
