"""Record serialization: PASS bundles ↔ S3 metadata / SimpleDB / wire JSON.

Three wire formats, one source of truth:

* **S3 metadata** (architecture A1, §4.1) — provenance rides as the ≤2 KB
  user metadata of the data object itself. Repeated attributes (multiple
  ``input`` records) get ``attr.N`` key suffixes; ancestor bundles
  (transient processes piggybacking on their first output file) are
  namespaced ``a{j}.`` with an ``a{j}.subject`` key carrying the
  ancestor's identity. Any record value over **1 KB** is spilled to its
  own S3 object and replaced by a ``@s3:`` pointer — the paper counts
  24,952 such records. If the remaining metadata still exceeds the 2 KB
  limit, the largest values are spilled until it fits (the paper
  acknowledges the limit problem without fully specifying this case; see
  EXPERIMENTS.md).

* **SimpleDB items** (architectures A2/A3, §4.2–4.3) — one item per
  object version, item name ``name_vNNNN``, one attribute-value pair per
  record, multi-valued attributes used for repeated records. Values over
  the 1 KB SimpleDB limit spill to S3 exactly as above. File items
  additionally carry the ``md5`` consistency record (MD5 of data ‖ nonce)
  and the ``nonce`` itself.

* **wire JSON** — compact dict encoding used by the A3 write-ahead log
  (SQS messages are 8 KB Unicode strings).

Spilled values use deterministic keys derived from the subject and record
index, so replaying a store protocol (A3's idempotent commit daemon)
overwrites the same overflow objects instead of leaking new ones.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Callable

from repro.units import KB, S3_MAX_METADATA_SIZE
from repro.passlib.records import (
    Attr,
    FlushEvent,
    ObjectRef,
    ProvenanceBundle,
    ProvenanceRecord,
    consistency_token,
)

#: Values larger than this are stored as separate S3 objects (§5: "we
#: store any record larger than 1KB in a separate S3 object").
SPILL_THRESHOLD = 1 * KB

#: Prefix marking a value that was spilled to S3.
POINTER_PREFIX = "@s3:"

#: Key namespace for spilled values inside the data bucket.
OVERFLOW_PREFIX = ".pass/overflow/"

#: Valid S3 nonce metadata: optional ``v`` prefix then digits (``v0007``).
_NONCE_RE = re.compile(r"v?(\d+)\Z")


def parse_nonce(nonce: str) -> int | None:
    """Version number from S3 nonce metadata, or ``None`` if malformed.

    The store writes ``vNNNN``, but metadata is plain user text: a
    corrupted or hand-written value must not crash a reader with a bare
    ``ValueError`` — callers decide whether to skip the item (repository
    scans) or surface a read-correctness error (targeted reads).
    """
    match = _NONCE_RE.fullmatch(nonce.strip())
    return int(match.group(1)) if match else None


@dataclass(frozen=True)
class OverflowObject:
    """A record value that must be stored as its own S3 object."""

    key: str
    value: str

    @property
    def size(self) -> int:
        return len(self.value.encode("utf-8"))


@dataclass(frozen=True)
class S3MetadataPayload:
    """Serialised provenance for one A1 PUT."""

    metadata: dict[str, str]
    overflow: tuple[OverflowObject, ...]

    @property
    def metadata_size(self) -> int:
        return sum(
            len(k.encode()) + len(v.encode()) for k, v in self.metadata.items()
        )


@dataclass(frozen=True)
class SdbItemPayload:
    """Serialised provenance for one SimpleDB item (one object version)."""

    item_name: str
    attributes: tuple[tuple[str, str], ...]
    overflow: tuple[OverflowObject, ...]

    @property
    def attribute_count(self) -> int:
        return len(self.attributes)


def overflow_key(subject: ObjectRef, index: int) -> str:
    """Deterministic S3 key for the ``index``-th spilled value of a version."""
    return f"{OVERFLOW_PREFIX}{subject.item_name}/{index:03d}"


# ---------------------------------------------------------------------------
# S3 metadata format (architecture A1)
# ---------------------------------------------------------------------------

def to_s3_metadata(
    event: FlushEvent,
    spill_threshold: int = SPILL_THRESHOLD,
    metadata_limit: int = S3_MAX_METADATA_SIZE,
) -> S3MetadataPayload:
    """Encode a flush event's provenance as S3 object metadata.

    The file's own records use bare keys; each transient-ancestor bundle
    ``j`` is namespaced ``a{j}.``. Values above ``spill_threshold`` are
    replaced by pointers; if the encoded metadata still exceeds
    ``metadata_limit``, the largest remaining values are spilled too.
    """
    metadata: dict[str, str] = {}
    overflow: list[OverflowObject] = []
    spill_index = 0

    def emit(prefix: str, subject: ObjectRef, records: tuple[ProvenanceRecord, ...]) -> None:
        nonlocal spill_index
        counters: dict[str, int] = {}
        for record in records:
            occurrence = counters.get(record.attribute, 0)
            counters[record.attribute] = occurrence + 1
            key = f"{prefix}{record.attribute}"
            if occurrence:
                key = f"{key}.{occurrence}"
            value = record.encoded_value()
            if len(value.encode()) > spill_threshold:
                pointer_key = overflow_key(event.subject, spill_index)
                spill_index += 1
                overflow.append(OverflowObject(key=pointer_key, value=value))
                value = POINTER_PREFIX + pointer_key
            metadata[key] = value

    for j, ancestor in enumerate(event.ancestors):
        prefix = f"a{j}."
        metadata[f"{prefix}subject"] = ancestor.subject.encode()
        metadata[f"{prefix}kind"] = ancestor.kind
        emit(prefix, ancestor.subject, ancestor.records)
    emit("", event.subject, event.bundle.records)
    metadata["nonce"] = event.nonce

    # Second pass: the 2 KB ceiling applies to the *total* metadata; keep
    # spilling the largest values until the payload fits.
    def total_size() -> int:
        return sum(len(k.encode()) + len(v.encode()) for k, v in metadata.items())

    while total_size() > metadata_limit:
        key, value = max(
            (
                (k, v)
                for k, v in metadata.items()
                if not v.startswith(POINTER_PREFIX) and k != "nonce"
            ),
            key=lambda kv: len(kv[1].encode()),
            default=(None, None),
        )
        if key is None:
            break  # nothing spillable left; let S3 reject the PUT
        pointer_key = overflow_key(event.subject, spill_index)
        spill_index += 1
        overflow.append(OverflowObject(key=pointer_key, value=value))
        metadata[key] = POINTER_PREFIX + pointer_key

    return S3MetadataPayload(metadata=metadata, overflow=tuple(overflow))


def bundles_from_s3_metadata(
    subject: ObjectRef,
    metadata: dict[str, str],
    fetch_overflow: Callable[[str], str],
) -> tuple[ProvenanceBundle, tuple[ProvenanceBundle, ...]]:
    """Decode S3 metadata back into (own bundle, ancestor bundles).

    ``fetch_overflow`` resolves ``@s3:`` pointers (issuing the GETs the
    query analysis charges for).
    """
    groups: dict[str, dict[str, str]] = {}
    own: dict[str, str] = {}
    for key, value in metadata.items():
        if key == "nonce":
            continue
        if key.startswith("a") and "." in key:
            prefix, rest = key.split(".", 1)
            if prefix[1:].isdigit():
                groups.setdefault(prefix, {})[rest] = value
                continue
        own[key] = value

    def decode_group(
        subject_ref: ObjectRef, kind: str, fields: dict[str, str]
    ) -> ProvenanceBundle:
        records = []
        for key in sorted(fields):
            attribute = key.split(".", 1)[0] if key.rsplit(".", 1)[-1].isdigit() else key
            value = fields[key]
            if value.startswith(POINTER_PREFIX):
                value = fetch_overflow(value[len(POINTER_PREFIX):])
            decoded: str | ObjectRef = value
            if attribute in Attr.REF_VALUED:
                decoded = ObjectRef.decode(value)
            records.append(ProvenanceRecord(subject_ref, attribute, decoded))
        return ProvenanceBundle(subject=subject_ref, kind=kind, records=tuple(records))

    ancestors = []
    for prefix in sorted(groups, key=lambda p: int(p[1:])):
        fields = groups[prefix]
        ancestor_subject = ObjectRef.decode(fields.pop("subject"))
        kind = fields.pop("kind", "process")
        ancestors.append(decode_group(ancestor_subject, kind, fields))
    own_kind = own.get("type", "file")
    own_bundle = decode_group(subject, own_kind, own)
    return own_bundle, tuple(ancestors)


# ---------------------------------------------------------------------------
# SimpleDB item format (architectures A2/A3)
# ---------------------------------------------------------------------------

def to_simpledb_items(
    event: FlushEvent,
    spill_threshold: int = SPILL_THRESHOLD,
) -> list[SdbItemPayload]:
    """Encode a flush event as SimpleDB items, one per bundle.

    The file's own item carries the extra ``md5``/``nonce`` consistency
    records (§4.2): ``md5 = H(md5(data) ‖ nonce)``.
    """
    payloads = []
    for bundle in event.ancestors:
        payloads.append(_bundle_to_item(bundle, spill_threshold))
    extra = (
        (Attr.MD5, consistency_token(event.data.md5(), event.nonce)),
        (Attr.NONCE, event.nonce),
    )
    payloads.append(_bundle_to_item(event.bundle, spill_threshold, extra))
    return payloads


def _bundle_to_item(
    bundle: ProvenanceBundle,
    spill_threshold: int,
    extra: tuple[tuple[str, str], ...] = (),
) -> SdbItemPayload:
    attributes: list[tuple[str, str]] = []
    overflow: list[OverflowObject] = []
    spill_index = 0
    for record in bundle.records:
        value = record.encoded_value()
        if len(value.encode()) > spill_threshold:
            pointer_key = overflow_key(bundle.subject, spill_index)
            spill_index += 1
            overflow.append(OverflowObject(key=pointer_key, value=value))
            value = POINTER_PREFIX + pointer_key
        attributes.append((record.attribute, value))
    attributes.extend(extra)
    return SdbItemPayload(
        item_name=bundle.subject.item_name,
        attributes=tuple(attributes),
        overflow=tuple(overflow),
    )


def bundle_from_item(
    item_name: str,
    attributes: dict[str, tuple[str, ...]],
    fetch_overflow: Callable[[str], str],
) -> ProvenanceBundle:
    """Decode one SimpleDB item back into a provenance bundle."""
    subject = ObjectRef.from_item_name(item_name)
    records = []
    kind = "file"
    for attribute in sorted(attributes):
        for value in attributes[attribute]:
            if value.startswith(POINTER_PREFIX):
                value = fetch_overflow(value[len(POINTER_PREFIX):])
            if attribute == Attr.TYPE:
                kind = value
            if attribute in (Attr.MD5, Attr.NONCE):
                continue  # consistency plumbing, not provenance proper
            decoded: str | ObjectRef = value
            if attribute in Attr.REF_VALUED:
                decoded = ObjectRef.decode(value)
            records.append(ProvenanceRecord(subject, attribute, decoded))
    return ProvenanceBundle(subject=subject, kind=kind, records=tuple(records))


# ---------------------------------------------------------------------------
# Wire JSON (A3 write-ahead log)
# ---------------------------------------------------------------------------

def record_to_wire(record: ProvenanceRecord) -> dict[str, str]:
    """Compact JSON-able encoding of one record."""
    return {
        "s": record.subject.encode(),
        "a": record.attribute,
        "v": record.encoded_value(),
    }


def record_from_wire(data: dict[str, str]) -> ProvenanceRecord:
    subject = ObjectRef.decode(data["s"])
    attribute = data["a"]
    value: str | ObjectRef = data["v"]
    if attribute in Attr.REF_VALUED:
        value = ObjectRef.decode(data["v"])
    return ProvenanceRecord(subject, attribute, value)


def bundle_to_wire(bundle: ProvenanceBundle) -> dict:
    return {
        "subject": bundle.subject.encode(),
        "kind": bundle.kind,
        "records": [record_to_wire(r) for r in bundle.records],
    }


def bundle_from_wire(data: dict) -> ProvenanceBundle:
    subject = ObjectRef.decode(data["subject"])
    return ProvenanceBundle(
        subject=subject,
        kind=data["kind"],
        records=tuple(record_from_wire(r) for r in data["records"]),
    )


def wire_dumps(payload: dict) -> str:
    """Canonical compact JSON used for SQS bodies (8 KB budget)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def wire_loads(text: str) -> dict:
    return json.loads(text)
