"""The client's local cache: mirrored data plus hidden provenance files.

All three architectures share this client-side arrangement (§4.1): *"We
mirror the file system in a local cache directory, reducing traffic to
S3. We also cache provenance locally in a file hidden from the user.
When the application issues a close on a file, we send both the file and
its provenance"* to the backend.

:class:`LocalCache` models that directory: a data entry per file path and
a hidden provenance entry per object version. The architectures' store
protocols begin by *reading the cache* (protocol step 1 in §4), so the
cache is the hand-off point between the PASS capture layer and the cloud
protocols — and the state that survives an application crash but not a
client-host loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blob import Blob
from repro.errors import CacheMiss
from repro.passlib.records import ObjectRef, ProvenanceBundle


@dataclass
class CacheEntry:
    """One cached file: current content plus per-version dirtiness."""

    path: str
    blob: Blob
    version: int
    dirty: bool = True


class LocalCache:
    """In-memory model of the client's cache directory.

    Data lives under the user-visible path; provenance bundles live in a
    "hidden" namespace keyed by object version (mirroring PASS's hidden
    provenance files). ``read_back`` counts how often the cache saved a
    round trip to S3, which examples surface when discussing cost.
    """

    def __init__(self) -> None:
        self._data: dict[str, CacheEntry] = {}
        self._provenance: dict[ObjectRef, ProvenanceBundle] = {}
        self.hits = 0
        self.misses = 0

    # -- data side ---------------------------------------------------------

    def put_data(self, path: str, blob: Blob, version: int) -> None:
        """Install file content for ``path`` at ``version`` (marks dirty)."""
        self._data[path] = CacheEntry(path=path, blob=blob, version=version)

    def get_data(self, path: str) -> CacheEntry:
        entry = self._data.get(path)
        if entry is None:
            self.misses += 1
            raise CacheMiss(path)
        self.hits += 1
        return entry

    def has_data(self, path: str) -> bool:
        return path in self._data

    def mark_clean(self, path: str) -> None:
        entry = self._data.get(path)
        if entry is not None:
            entry.dirty = False

    def dirty_paths(self) -> list[str]:
        return sorted(p for p, e in self._data.items() if e.dirty)

    # -- hidden provenance side ------------------------------------------------

    def put_provenance(self, bundle: ProvenanceBundle) -> None:
        self._provenance[bundle.subject] = bundle

    def get_provenance(self, ref: ObjectRef) -> ProvenanceBundle:
        bundle = self._provenance.get(ref)
        if bundle is None:
            self.misses += 1
            raise CacheMiss(ref.encode())
        self.hits += 1
        return bundle

    def has_provenance(self, ref: ObjectRef) -> bool:
        return ref in self._provenance

    def provenance_refs(self) -> list[ObjectRef]:
        return sorted(self._provenance, key=lambda r: (r.name, r.version))

    def clear_provenance(self) -> int:
        """Drop cached provenance bundles (they are safe on the backend).

        Returns the number of bundles dropped. Used by paper-scale trace
        generation to bound client memory.
        """
        dropped = len(self._provenance)
        self._provenance.clear()
        return dropped

    # -- lifecycle ------------------------------------------------------------------

    def evict(self, path: str) -> None:
        """Drop a file's data (e.g. under cache pressure); provenance stays."""
        self._data.pop(path, None)

    def clear(self) -> None:
        """Model losing the client host: all cached state is gone."""
        self._data.clear()
        self._provenance.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LocalCache(files={len(self._data)}, "
            f"bundles={len(self._provenance)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
