"""PASS — a Provenance-Aware Storage System (user-level simulation).

The paper's system model (§2.4) assumes a PASS client: a storage system
that observes the system calls applications make, derives provenance
records from them (a ``read`` makes the process depend on the file; a
``write`` makes the file depend on the process), versions objects to
preserve causality, records provenance for transient objects (processes,
pipes), and caches both data and provenance locally until a file
``close`` flushes them to the backend.

This subpackage reimplements that capture pipeline in user space:

* :mod:`repro.passlib.records` — provenance records, object references,
  flush events (the interchange format for the whole library);
* :mod:`repro.passlib.objects` — pnode-identified files/processes/pipes;
* :mod:`repro.passlib.versioning` — the freeze-and-bump versioning rule
  that keeps the provenance graph acyclic;
* :mod:`repro.passlib.capture` — :class:`PassSystem`, the syscall
  observation facade used by workload generators and examples;
* :mod:`repro.passlib.cache` — the client's local data/provenance cache;
* :mod:`repro.passlib.serializer` — conversions between records and the
  S3-metadata / SimpleDB / SQS-WAL wire formats.
"""

from repro.passlib.capture import PassSystem, ProcessHandle
from repro.passlib.cache import LocalCache
from repro.passlib.objects import Kind, PassObject
from repro.passlib.records import (
    Attr,
    FlushEvent,
    ObjectRef,
    ProvenanceBundle,
    ProvenanceRecord,
)
from repro.passlib.versioning import VersionManager

__all__ = [
    "PassSystem",
    "ProcessHandle",
    "LocalCache",
    "Kind",
    "PassObject",
    "Attr",
    "FlushEvent",
    "ObjectRef",
    "ProvenanceBundle",
    "ProvenanceRecord",
    "VersionManager",
]
