"""PASS versioning: the freeze-and-bump rule that keeps provenance acyclic.

PASS "versions objects appropriately in order to preserve causality"
(§2.4). The hazard is the classic provenance cycle [Braun et al. 2006]:
process P reads file F, then writes F — without versioning, F depends on
P and P depends on F. PASS breaks such cycles by *versioning*: an object
version is **frozen** the moment anything observes it (a process reads
the file, or a descendant's provenance references the process); a write
to a frozen version cuts a *new* version that depends on the old one.

The invariant maintained here (and property-tested in the suite):

    every INPUT/prev_version edge points from a strictly younger
    version-creation event to an already-frozen version, so the
    version-level provenance graph is a DAG.

The :class:`VersionManager` exposes the two syscall-shaped entry points
the capture layer uses — :meth:`on_read` and :meth:`on_write` — plus
:meth:`on_observe` for flush-time freezing of transient ancestors.
"""

from __future__ import annotations

from repro.passlib.objects import PassObject
from repro.passlib.records import ObjectRef


class VersionManager:
    """Applies the freeze-and-bump rule to reads and writes."""

    def __init__(self) -> None:
        self.version_bumps = 0
        self.cycles_avoided = 0
        #: Version-graph edges (descendant, ancestor) for invariant checks.
        self.edges: list[tuple[ObjectRef, ObjectRef]] = []

    # -- syscall hooks -------------------------------------------------------

    def on_read(self, reader: PassObject, source: PassObject) -> None:
        """``reader`` (a process) read ``source`` (file or pipe).

        The read makes the reader depend on the source's current version,
        which is thereby observed and frozen. If the reader's own current
        version is already frozen (some output already depends on it),
        the reader gets a new version first — otherwise that output would
        retroactively appear to depend on the new input, misstating
        causality (and enabling cycles).
        """
        source.freeze()
        if reader.frozen:
            self._bump(reader)
            self.cycles_avoided += 1
        if not reader.has_input(source.ref):
            reader.add_input(source.ref)
            self.edges.append((reader.ref, source.ref))

    def on_write(self, writer: PassObject, target: PassObject) -> None:
        """``writer`` (a process) wrote ``target`` (file or pipe).

        The write makes the target depend on the writer's current
        version; the writer's version is thereby observed and frozen. If
        the target's current version was itself already observed (someone
        read it, or it was flushed), the write must cut a new version of
        the target instead of mutating history.
        """
        writer.freeze()
        if target.frozen or target.current_version_flushed:
            self._bump(target)
        if not target.has_input(writer.ref):
            target.add_input(writer.ref)
            self.edges.append((target.ref, writer.ref))

    def on_observe(self, obj: PassObject) -> None:
        """An external observer (a flush) captured ``obj``'s current version."""
        obj.freeze()

    # -- internals ---------------------------------------------------------------

    def _bump(self, obj: PassObject) -> None:
        previous = obj.ref
        obj.bump_version()
        self.version_bumps += 1
        self.edges.append((obj.ref, previous))

    # -- invariant checking (used by tests) -----------------------------------------

    def is_acyclic(self) -> bool:
        """Check the recorded version graph is a DAG (test oracle)."""
        children: dict[ObjectRef, list[ObjectRef]] = {}
        for descendant, ancestor in self.edges:
            children.setdefault(descendant, []).append(ancestor)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[ObjectRef, int] = {}

        def visit(node: ObjectRef) -> bool:
            colour[node] = GREY
            for child in children.get(node, ()):
                state = colour.get(child, WHITE)
                if state == GREY:
                    return False
                if state == WHITE and not visit(child):
                    return False
            colour[node] = BLACK
            return True

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + len(self.edges)))
        try:
            for descendant, _ in self.edges:
                if colour.get(descendant, WHITE) == WHITE:
                    if not visit(descendant):
                        return False
            return True
        finally:
            sys.setrecursionlimit(old_limit)
