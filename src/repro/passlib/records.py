"""Provenance records — the interchange format of the whole library.

A PASS provenance record is an attribute of one **object version**: the
paper's example is version 2 of object ``foo`` carrying records
``(input, bar:2)`` and ``(type, file)`` (§4.2). We model that as
:class:`ProvenanceRecord` rows whose subject is an :class:`ObjectRef`
(name + version) and whose value is either a plain string or another
``ObjectRef`` (a cross-reference, i.e. a provenance-graph edge).

Encodings follow the paper's conventions:

* cross references render as ``name:vNNNN`` (the paper prints ``bar:2``;
  we zero-pad so lexicographic order in SimpleDB matches version order);
* a version's SimpleDB item name is ``name_vNNNN`` (the paper's
  ``foo_2``);
* versions start at 1 for the first flushed state of an object.

:class:`ProvenanceBundle` groups the records describing one object
version; :class:`FlushEvent` pairs a bundle with the object's data (for
files) and lists the transient-ancestor bundles that must ride along —
the unit of work the three architectures' ``store`` protocols consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.blob import Blob

#: Width of the zero-padded version field in encoded references.
VERSION_DIGITS = 4


class Attr:
    """Well-known provenance attribute names (PASS record types)."""

    INPUT = "input"          # value: ObjectRef — the ancestry edge
    TYPE = "type"            # value: 'file' | 'process' | 'pipe'
    NAME = "name"            # human name (program or file basename)
    ARGV = "argv"            # process arguments (may exceed 1 KB)
    ENV = "env"              # process environment (regularly exceeds 1 KB)
    PID = "pid"
    VERSION_OF = "prev_version"  # value: ObjectRef to the previous version
    MD5 = "md5"              # consistency record: H(data-md5 || nonce)
    NONCE = "nonce"
    CREATED = "created"      # simulated timestamp of version creation
    WORKLOAD = "workload"    # which generator produced the object

    #: Attributes whose values are cross references.
    REF_VALUED = frozenset({INPUT, VERSION_OF})


@dataclass(frozen=True, order=True)
class ObjectRef:
    """A (name, version) reference to one object version."""

    name: str
    version: int

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"versions start at 1, got {self.version} for {self.name!r}")

    def encode(self) -> str:
        """Wire encoding used in record values: ``name:vNNNN``."""
        return f"{self.name}:v{self.version:0{VERSION_DIGITS}d}"

    @property
    def path(self) -> str:
        """The object's path (PASS file name) — the shard-routing key.

        All versions of one object share a path, so a consistent-hash
        router keeps an object's whole version history on one shard.
        """
        return self.name

    @property
    def item_name(self) -> str:
        """SimpleDB item name for this version: ``name_vNNNN``."""
        return f"{self.name}_v{self.version:0{VERSION_DIGITS}d}"

    @classmethod
    def decode(cls, text: str) -> "ObjectRef":
        """Inverse of :meth:`encode`.

        >>> ObjectRef.decode("bar:v0002")
        ObjectRef(name='bar', version=2)
        """
        name, _, version_text = text.rpartition(":v")
        if not name or not version_text.isdigit():
            raise ValueError(f"not an encoded ObjectRef: {text!r}")
        return cls(name=name, version=int(version_text))

    @classmethod
    def from_item_name(cls, item_name: str) -> "ObjectRef":
        """Inverse of :attr:`item_name`.

        >>> ObjectRef.from_item_name("foo_v0002")
        ObjectRef(name='foo', version=2)
        """
        name, _, version_text = item_name.rpartition("_v")
        if not name or not version_text.isdigit():
            raise ValueError(f"not an item name: {item_name!r}")
        return cls(name=name, version=int(version_text))


@dataclass(frozen=True)
class ProvenanceRecord:
    """One (subject, attribute, value) provenance row."""

    subject: ObjectRef
    attribute: str
    value: "str | ObjectRef"

    @property
    def is_reference(self) -> bool:
        return isinstance(self.value, ObjectRef)

    def encoded_value(self) -> str:
        """The value as stored on the wire (references use ``encode``)."""
        if isinstance(self.value, ObjectRef):
            return self.value.encode()
        return self.value

    @property
    def value_size(self) -> int:
        """Byte size of the encoded value (what the 1 KB spill rule sees)."""
        return len(self.encoded_value().encode("utf-8"))

    def __str__(self) -> str:
        return f"{self.subject.encode()} {self.attribute}={self.encoded_value()}"


@dataclass(frozen=True)
class ProvenanceBundle:
    """All provenance records describing one object version."""

    subject: ObjectRef
    kind: str  # 'file' | 'process' | 'pipe'
    records: tuple[ProvenanceRecord, ...]

    def __post_init__(self) -> None:
        for record in self.records:
            if record.subject != self.subject:
                raise ValueError(
                    f"record {record} does not describe {self.subject.encode()}"
                )

    def inputs(self) -> list[ObjectRef]:
        """Cross references this version depends on (ancestry edges)."""
        return [
            record.value
            for record in self.records
            if record.attribute in Attr.REF_VALUED and isinstance(record.value, ObjectRef)
        ]

    def attribute_values(self, attribute: str) -> list[str]:
        return [
            record.encoded_value()
            for record in self.records
            if record.attribute == attribute
        ]

    def total_size(self) -> int:
        """Total encoded bytes (attribute names + values)."""
        return sum(
            len(r.attribute.encode()) + r.value_size for r in self.records
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ProvenanceRecord]:
        return iter(self.records)


@dataclass(frozen=True)
class FlushEvent:
    """The unit the architectures store: one file close.

    ``data`` is the file content at close time. ``ancestors`` carries the
    provenance bundles of transient objects (processes, pipes) that this
    file's provenance references and that have not been persisted by an
    earlier flush — PASS ships ancestors first to maintain (eventual)
    causal ordering (§3, property 2).
    """

    bundle: ProvenanceBundle
    data: Blob
    ancestors: tuple[ProvenanceBundle, ...] = ()

    @property
    def subject(self) -> ObjectRef:
        return self.bundle.subject

    @property
    def nonce(self) -> str:
        """The consistency nonce — 'typically the file version' (§4.2)."""
        return f"v{self.subject.version:0{VERSION_DIGITS}d}"

    def all_bundles(self) -> tuple[ProvenanceBundle, ...]:
        """Ancestor bundles first, then the file's own bundle."""
        return (*self.ancestors, self.bundle)

    def all_records(self) -> list[ProvenanceRecord]:
        return [record for bundle in self.all_bundles() for record in bundle]


def consistency_token(data_md5: str, nonce: str) -> str:
    """The MD5(data ‖ nonce) value stored with provenance (§4.2).

    Computed from the data digest rather than the raw bytes so that
    paper-scale synthetic blobs never need materialising; collision
    behaviour is equivalent for the consistency check's purposes
    (it changes iff the data digest or the nonce changes).
    """
    import hashlib

    return hashlib.md5(f"{data_md5}|{nonce}".encode("utf-8")).hexdigest()


def iter_records(bundles: Iterable[ProvenanceBundle]) -> Iterator[ProvenanceRecord]:
    """All records across bundles, in bundle order."""
    for bundle in bundles:
        yield from bundle
