"""The PASS capture engine: syscall observation → flush events.

:class:`PassSystem` is the facade workload generators and examples use to
"run" applications under provenance capture, mirroring how the kernel
PASS observes system calls (§2.4):

* ``read`` — the reading process comes to depend on the file read;
* ``write`` — the written file comes to depend on the writing process;
* pipes relate processes to processes;
* ``close`` — the trigger for all three architectures' store protocols:
  a :class:`~repro.passlib.records.FlushEvent` is queued carrying the
  file's data, its provenance bundle, and the bundles of any transient
  ancestors (processes, pipes) not yet shipped — ancestors ride first so
  (eventual) causal ordering holds by construction.

Example::

    pas = PassSystem()
    pas.stage_input("genome/nr.fasta", SyntheticBlob("nr", 2_000_000))
    with pas.process("blast", argv="-db nr -query q.fa") as blast:
        blast.read("genome/nr.fasta")
        blast.write("out/hits.blast", b"...alignments...")
        blast.close("out/hits.blast")
    events = pas.drain_flushes()   # feed these to an architecture
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.blob import Blob, BytesBlob, as_blob
from repro.errors import ObjectClosed, UnknownObject
from repro.passlib.cache import LocalCache
from repro.passlib.objects import Kind, PassObject
from repro.passlib.records import Attr, FlushEvent, ObjectRef, ProvenanceBundle
from repro.passlib.versioning import VersionManager

#: Default content for files read before anything staged or wrote them.
_DEFAULT_INPUT = b"\0"


class PassSystem:
    """One PASS client host: capture state, local cache, flush queue."""

    def __init__(self, workload: str | None = None):
        self.cache = LocalCache()
        self.versions = VersionManager()
        self.workload = workload
        self._files: dict[str, PassObject] = {}
        self._pipes: dict[str, PassObject] = {}
        self._pids = itertools.count(1000)
        self._pipe_ids = itertools.count(1)
        self._flush_queue: list[FlushEvent] = []
        #: Transient object versions already shipped in some flush event.
        self._persisted: set[ObjectRef] = set()
        self.flush_count = 0

    # -- object lookup -------------------------------------------------------

    def file(self, path: str) -> PassObject:
        """Get or create the PASS object for a file path."""
        obj = self._files.get(path)
        if obj is None:
            obj = PassObject(name=path, kind=Kind.FILE)
            self._describe(obj)
            self._files[path] = obj
        return obj

    def has_file(self, path: str) -> bool:
        return path in self._files

    # -- staging external inputs -----------------------------------------------

    def stage_input(self, path: str, content: Blob | bytes | str) -> FlushEvent:
        """Install a pristine input file (e.g. a downloaded data set).

        The file gets a minimal provenance bundle (type/name only — it has
        no ancestors on this host) and is queued for flushing immediately,
        so anything that later reads it has its ancestor persisted first.
        """
        blob = as_blob(content)
        obj = self.file(path)
        self.cache.put_data(path, blob, obj.version)
        return self._flush(obj, blob)

    # -- processes ------------------------------------------------------------------

    def process(
        self,
        name: str,
        argv: str | Iterable[str] = (),
        env: str | dict[str, str] = "",
        pid: int | None = None,
        parent: "ProcessHandle | None" = None,
    ) -> "ProcessHandle":
        """Start observing a process (usable as a context manager).

        ``parent`` records the fork/exec lineage: the child depends on
        the parent process version, so shell wrappers and build drivers
        appear in their outputs' ancestry as PASS captures them.
        """
        pid = pid if pid is not None else next(self._pids)
        obj = PassObject(name=f"proc/{name}.{pid}", kind=Kind.PROCESS)
        obj.add(Attr.TYPE, Kind.PROCESS)
        obj.add(Attr.NAME, name)
        obj.add(Attr.PID, str(pid))
        if parent is not None:
            parent.obj.freeze()
            obj.add_input(parent.obj.ref)
        argv_text = argv if isinstance(argv, str) else " ".join(argv)
        if argv_text:
            obj.add(Attr.ARGV, argv_text)
        env_text = (
            env
            if isinstance(env, str)
            else "\n".join(f"{k}={v}" for k, v in sorted(env.items()))
        )
        if env_text:
            obj.add(Attr.ENV, env_text)
        if self.workload:
            obj.add(Attr.WORKLOAD, self.workload)
        return ProcessHandle(self, obj)

    def make_pipe(self) -> PassObject:
        """Create an anonymous pipe (a transient object)."""
        pipe = PassObject(name=f"pipe/{next(self._pipe_ids)}", kind=Kind.PIPE)
        pipe.add(Attr.TYPE, Kind.PIPE)
        return pipe

    # -- flushing ---------------------------------------------------------------------

    def close_file(self, path: str) -> FlushEvent | None:
        """Application closed a written file: queue its flush event.

        Closing a file whose current version was already flushed and has
        not been modified since is a no-op (returns ``None``) — PASS
        flushes on the *last* close of dirty state, not on every close.
        """
        obj = self._files.get(path)
        if obj is None:
            raise UnknownObject(path)
        try:
            entry = self.cache.get_data(path)
        except Exception:
            raise UnknownObject(f"{path}: no cached data to flush") from None
        if obj.current_version_flushed and not entry.dirty:
            return None
        return self._flush(obj, entry.blob)

    def drain_flushes(self) -> list[FlushEvent]:
        """Take all queued flush events (in causal order)."""
        events, self._flush_queue = self._flush_queue, []
        return events

    def trim_flushed(self) -> int:
        """Release record history that can never be flushed again.

        Paper-scale traces (tens of thousands of events) would otherwise
        accumulate every superseded version's records in memory. Safe to
        call at any quiescent point (no event queued): cached provenance
        bundles were already handed to flush events, file version history
        is never re-read, and transient history is only needed for
        versions not yet persisted.
        """
        freed = self.cache.clear_provenance()
        for obj in self._files.values():
            freed += len(obj.history)
            obj.history.clear()
        for registry in (self._transients, self._pipes):
            for obj in registry.values():
                persisted_versions = [
                    version
                    for version in obj.history
                    if ObjectRef(obj.name, version) in self._persisted
                ]
                for version in persisted_versions:
                    del obj.history[version]
                    freed += 1
        return freed

    @property
    def pending_flushes(self) -> int:
        return len(self._flush_queue)

    # -- internals ------------------------------------------------------------------------

    def _describe(self, obj: PassObject) -> None:
        """Attach the descriptor records every version carries."""
        obj.add(Attr.TYPE, obj.kind)
        base = obj.name.rsplit("/", 1)[-1]
        if obj.kind == Kind.PROCESS:
            # Process object names are "proc/<program>.<pid>"; the NAME
            # record carries the program, which Q2-style queries match.
            base = base.rsplit(".", 1)[0]
        obj.add(Attr.NAME, base)
        if self.workload:
            obj.add(Attr.WORKLOAD, self.workload)

    def _ensure_descriptors(self, obj: PassObject) -> None:
        """Descriptor records after a version bump (type/name again)."""
        if not any(r.attribute == Attr.TYPE for r in obj.pending):
            self._describe(obj)

    def _flush(self, obj: PassObject, blob: Blob) -> FlushEvent:
        self._ensure_descriptors(obj)
        self.versions.on_observe(obj)
        bundle = obj.snapshot_bundle()
        ancestors = self._collect_transient_ancestors(bundle)
        obj.mark_flushed()
        self.cache.put_provenance(bundle)
        self.cache.mark_clean(obj.name)
        event = FlushEvent(bundle=bundle, data=blob, ancestors=tuple(ancestors))
        self._flush_queue.append(event)
        self.flush_count += 1
        return event

    def _collect_transient_ancestors(
        self, bundle: ProvenanceBundle
    ) -> list[ProvenanceBundle]:
        """Transient ancestor bundles not yet persisted, ancestors first.

        Walks INPUT/prev_version references transitively through
        *transient* objects (a process's inputs may reference a pipe whose
        inputs reference another process, ...); persistent ancestors were
        flushed by their own close events.
        """
        collected: list[ProvenanceBundle] = []
        seen: set[ObjectRef] = set()

        def walk(ref: ObjectRef) -> None:
            if ref in seen or ref in self._persisted:
                return
            seen.add(ref)
            owner = self._transient_owner(ref)
            if owner is None:
                return  # persistent object: flushed via its own close
            if owner.version == ref.version:
                # Persisting externalises this version: freeze it so any
                # later input to the object cuts a new version instead of
                # silently extending what the cloud already holds.
                self.versions.on_observe(owner)
            ancestor_bundle = owner.snapshot_bundle(ref.version)
            for parent in ancestor_bundle.inputs():
                walk(parent)
            collected.append(ancestor_bundle)
            self._persisted.add(ref)

        for ref in bundle.inputs():
            walk(ref)
        return collected

    def _transient_owner(self, ref: ObjectRef) -> PassObject | None:
        if ref.name.startswith("proc/") or ref.name.startswith("pipe/"):
            owner = self._pipes.get(ref.name)
            if owner is not None:
                return owner
            # Processes are tracked by their handles; find by name via the
            # registry maintained when handles perform IO.
            return self._transients.get(ref.name)
        return None

    # Registry of transient objects that have participated in IO.
    @property
    def _transients(self) -> dict[str, PassObject]:
        registry = getattr(self, "_transient_registry", None)
        if registry is None:
            registry = {}
            self._transient_registry = registry
        return registry

    def register_transient(self, obj: PassObject) -> None:
        if obj.kind == Kind.PIPE:
            self._pipes[obj.name] = obj
        else:
            self._transients[obj.name] = obj


class ProcessHandle:
    """Syscall-level view of one observed process."""

    def __init__(self, system: PassSystem, obj: PassObject):
        self._system = system
        self.obj = obj
        self._exited = False
        system.register_transient(obj)

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "ProcessHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.exit()

    def exit(self) -> None:
        self._exited = True

    @property
    def ref(self) -> ObjectRef:
        return self.obj.ref

    # -- syscalls -----------------------------------------------------------

    def read(self, path: str) -> Blob:
        """``read(2)``: this process now depends on the file's version.

        Reading a file nobody staged or wrote creates it with minimal
        placeholder content, so the provenance graph never references a
        file the capture layer has not seen. Reading a *dirty, not yet
        flushed* file forces its flush first: the version being depended
        on must reach the backend before any descendant does, or causal
        ordering could never be satisfied (§3, property 2).
        """
        self._check_alive()
        system = self._system
        file_obj = system.file(path)
        if not system.cache.has_data(path):
            system.stage_input(path, BytesBlob(_DEFAULT_INPUT))
        elif not file_obj.current_version_flushed:
            system._flush(file_obj, system.cache.get_data(path).blob)
        system.versions.on_read(self.obj, file_obj)
        # The read may have cut a new version of this process (cycle
        # avoidance): re-attach its descriptor records.
        system._ensure_descriptors(self.obj)
        return system.cache.get_data(path).blob

    def write(self, path: str, content: Blob | bytes | str) -> ObjectRef:
        """``write(2)``: the file now depends on this process.

        Returns the reference to the (possibly freshly cut) file version
        holding the new content.
        """
        self._check_alive()
        system = self._system
        file_obj = system.file(path)
        system.versions.on_write(self.obj, file_obj)
        system._ensure_descriptors(file_obj)
        system.cache.put_data(path, as_blob(content), file_obj.version)
        return file_obj.ref

    def close(self, path: str) -> FlushEvent | None:
        """``close(2)`` on a written file: triggers the backend flush.

        Returns ``None`` when the current version was already flushed
        and nothing changed since (see ``PassSystem.close_file``).
        """
        self._check_alive()
        return self._system.close_file(path)

    # -- pipes -------------------------------------------------------------------

    def write_pipe(self, pipe: PassObject) -> None:
        """Send data into a pipe (pipe depends on this process)."""
        self._check_alive()
        self._system.register_transient(pipe)
        self._system.versions.on_write(self.obj, pipe)
        self._system._ensure_descriptors(pipe)

    def read_pipe(self, pipe: PassObject) -> None:
        """Consume a pipe (this process depends on the pipe)."""
        self._check_alive()
        self._system.register_transient(pipe)
        self._system.versions.on_read(self.obj, pipe)
        self._system._ensure_descriptors(self.obj)

    # -- internals ---------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._exited:
            raise ObjectClosed(f"process {self.obj.name!r} has exited")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessHandle({self.obj.name!r}, v{self.obj.version})"
